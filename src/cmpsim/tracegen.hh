/**
 * @file
 * Synthetic instruction trace generator.
 *
 * Substitutes for SPEC reference traces: a stream of typed
 * instructions whose statistical structure (instruction mix, register
 * dependency distances, branch bias, and memory locality pools) is
 * drawn from an AppProfile. Memory addresses come from three pools —
 * an L1-resident hot set, an L2-resident warm set, and a DRAM-sized
 * cold set — with mixing probabilities derived from the profile's
 * target miss rates, so the cache models reproduce the intended
 * L1/L2 behaviour without real address traces.
 */

#ifndef VARSCHED_CMPSIM_TRACEGEN_HH
#define VARSCHED_CMPSIM_TRACEGEN_HH

#include <cstdint>

#include "cmpsim/workload.hh"
#include "solver/rng.hh"

namespace varsched
{

/** Instruction classes the timing model distinguishes. */
enum class InstrType : std::uint8_t
{
    IntAlu,
    FpAlu,
    Load,
    Store,
    Branch,
};

/** One synthetic instruction. */
struct SynthInstr
{
    InstrType type = InstrType::IntAlu;
    /**
     * Dependency distance: this instruction reads the result of the
     * instruction @p depDistance slots earlier (0 = no dependency).
     */
    std::uint32_t depDistance = 0;
    /** Byte address for loads/stores; PC for branches. */
    std::uint64_t addr = 0;
    /** Branch outcome (branches only). */
    bool taken = false;
};

/** Streaming generator of SynthInstr for one application. */
class TraceGenerator
{
  public:
    /**
     * @param app Profile that sets mix/locality/bias.
     * @param rng Private stream (forked per thread instance).
     */
    TraceGenerator(const AppProfile &app, Rng rng);

    /** Produce the next instruction. */
    SynthInstr next();

    /**
     * Retarget the memory-locality mix to a behavioural phase: the
     * phase's missScale multiplies the profile's per-instruction miss
     * targets, so a "lull" phase streams more warm/cold traffic and a
     * "burst" phase stays L1-resident. Instruction mix and branch
     * structure are phase-invariant, matching the workload model
     * (Phase scales CPI/miss/activity, not the static code).
     */
    void setPhase(const Phase &phase);

    /**
     * Install this application's resident working set: the hot pool
     * into L1 (and L2), the warm pool into L2. Equivalent to a long
     * cache warmup, so measurement can start in steady state.
     */
    void prefill(class Cache &l1, class Cache &l2) const;

  private:
    std::uint64_t pickAddress();
    /** Derive pWarm_/pCold_ from the profile at @p missScale. */
    void retargetMissRates(double missScale);

    const AppProfile *app_;
    Rng rng_;

    /**
     * Base of this instance's private address space: every thread
     * has its own hot/warm working set, so co-scheduled copies of
     * the same application still *compete* for shared-cache capacity
     * rather than sharing lines.
     */
    std::uint64_t addrBase_;

    // Address pools (byte sizes).
    std::uint64_t hotBytes_;
    std::uint64_t warmBytes_;
    std::uint64_t coldBytes_;
    double pWarm_; ///< P(access leaves L1 pool)
    double pCold_; ///< P(access leaves L2 pool)

    // Small static set of branch sites; some biased, some random.
    static constexpr std::size_t kBranchSites = 64;
    double branchBias_[kBranchSites];
    std::uint64_t branchPc_[kBranchSites];

    std::uint64_t seqCounter_ = 0; ///< For stride components.
};

} // namespace varsched

#endif // VARSCHED_CMPSIM_TRACEGEN_HH
