/**
 * @file
 * Per-core critical-path population and maximum-frequency model.
 *
 * Following VARIUS, a core's cycle time is set by the slowest of a
 * population of critical paths sampled across its footprint:
 *
 *  - *Logic* paths (ALU/decoder style): a chain of gatesPerPath gates,
 *    so the random Vth/Leff component averages down by sqrt(G) while
 *    the systematic component follows the path's die location.
 *  - *SRAM* paths (L1 access style): the access is gated by the worst
 *    cell in the array, so the random component contributes its
 *    statistical maximum over the cell population instead of
 *    averaging out.
 *
 * fmax(V, T) = calibration / max-path-delay(V, T), with the
 * calibration constant chosen so a variation-free core clocks the
 * nominal 4 GHz at 1 V and the hot 95 C binning temperature.
 */

#ifndef VARSCHED_TIMING_CRITPATH_HH
#define VARSCHED_TIMING_CRITPATH_HH

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.hh"
#include "solver/rng.hh"
#include "timing/alphapower.hh"
#include "varius/varmap.hh"

namespace varsched
{

/**
 * Smallest admissible normalised Leff for a sampled path. The random
 * component can drive a draw towards zero (or negative), where the
 * alpha-power delay model loses meaning; both the logic- and the
 * SRAM-path sampling loops clamp to this floor.
 */
inline constexpr double kMinLeff = 0.3;

/** Critical-path population parameters. */
struct CritPathParams
{
    /** Logic critical paths per core. */
    std::size_t logicPathsPerCore = 24;
    /** Gates per logic path (FO4-ish depth). */
    std::size_t gatesPerPath = 12;
    /** SRAM critical paths per core (one per array/bank). */
    std::size_t sramPathsPerCore = 8;
    /** Cells whose worst-case delay gates one SRAM path. */
    double sramCellsPerPath = 32.0 * 1024.0;
    /** Nominal frequency at (1 V, bin temperature), Hz. */
    double nominalFreqHz = 4.0e9;
    /** Nominal supply voltage, volts. */
    double nominalVdd = 1.0;
    /** Frequency binning temperature, Celsius (Section 7.1). */
    double binTempC = 95.0;
};

/**
 * Timing view of one manufactured core: effective (Vth, Leff) per
 * critical path, and fmax as a function of voltage and temperature.
 *
 * The population is stored structure-of-arrays — one contiguous Vth
 * sweep and one contiguous Leff sweep — so maxDelay() can hand the
 * whole population to the batched gateDelayBatch() kernel. The
 * scalar element-by-element evaluation survives as
 * maxDelayScalarRef(), the reference the batched path must agree
 * with to <= 1e-12 relative (bit-identical today, since the batch
 * kernel only hoists loop invariants).
 */
class CoreTiming
{
  public:
    /** One critical path's effective device parameters. */
    struct Path
    {
        double vthEff;  ///< Effective Vth at 60 C, volts.
        double leffEff; ///< Effective normalised Leff.
    };

    /**
     * @param paths Sampled path population (must be non-empty).
     * @param delayParams Device delay model.
     * @param cpParams Population and calibration parameters.
     * @param vthNominal Variation-free Vth (60 C), the calibration
     *        reference that maps to nominalFreqHz.
     * @param leffNominal Variation-free normalised Leff.
     */
    CoreTiming(std::vector<Path> paths, const DelayParams &delayParams,
               const CritPathParams &cpParams, double vthNominal,
               double leffNominal);

    /**
     * Apply a uniform threshold-voltage shift to every path — the
     * effect of a per-core body bias (forward bias: negative shift,
     * faster and leakier; reverse bias: positive shift).
     */
    void shiftVth(double deltaV);

    /**
     * Worst (largest) path delay at the given operating point,
     * evaluated through the batched kernel.
     */
    double maxDelay(double v, double tempC) const;

    /**
     * Scalar reference for maxDelay(): per-path gateDelay() calls,
     * exactly the pre-SoA evaluation. Kept for the agreement tests;
     * maxDelay() must match it within 1e-12 relative.
     */
    double maxDelayScalarRef(double v, double tempC) const;

    /** Maximum supported frequency (Hz) at the given operating point. */
    double fmax(double v, double tempC) const;

    /** Number of critical paths. */
    std::size_t numPaths() const { return vth_.size(); }

    /** Path population materialised as AoS (for tests / analysis). */
    std::vector<Path> paths() const;

    /** Contiguous per-path Vth sweep (60 C values, volts). */
    const std::vector<double> &pathVth() const { return vth_; }
    /** Contiguous per-path normalised-Leff sweep. */
    const std::vector<double> &pathLeff() const { return leff_; }

  private:
    std::vector<double> vth_;  ///< SoA: per-path Vth at 60 C.
    std::vector<double> leff_; ///< SoA: per-path normalised Leff.
    DelayParams delayParams_;
    double delayScale_; ///< Converts relative delay to seconds.
};

/**
 * Build the timing view of core @p coreId on a die described by
 * @p map, sampling path locations inside the core's floorplan tile.
 *
 * @param rng Per-die stream; path placement and residual randomness
 *        are deterministic given the die seed.
 */
CoreTiming buildCoreTiming(const VariationMap &map, const Floorplan &plan,
                           std::size_t coreId, Rng &rng,
                           const DelayParams &delayParams = {},
                           const CritPathParams &cpParams = {});

/**
 * Relative delay of the nominal (variation-free) critical path at
 * (nominalVdd, binTempC) — the calibration reference.
 */
double nominalPathDelay(const DelayParams &delayParams,
                        const CritPathParams &cpParams,
                        double vthMean, double leffMean);

} // namespace varsched

#endif // VARSCHED_TIMING_CRITPATH_HH
