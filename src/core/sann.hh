/**
 * @file
 * SAnn: simulated-annealing power management (Sections 4.3.2 / 6.5).
 *
 * Same goal as LinOpt — maximise throughput under Ptarget and
 * Pcoremax — but searched with simulated annealing over the discrete
 * per-core voltage-level space, evaluating power *accurately* at
 * every level (no linear approximation). The initial state comes from
 * a simple greedy heuristic and the initial annealing temperature
 * scales with thread count, per the paper. SAnn is the quality
 * yardstick for LinOpt; it costs orders of magnitude more compute
 * (Fig 15 vs the SAnn timing bench).
 */

#ifndef VARSCHED_CORE_SANN_HH
#define VARSCHED_CORE_SANN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/pmalgo.hh"
#include "solver/annealing.hh"

namespace varsched
{

/**
 * Incremental annealing-energy oracle over a ChipSnapshot: the SAnn
 * energy (-objective in kMIPS plus steep per-watt penalties for chip-
 * and per-core-budget violations) maintained as running sums — total
 * power, objective, cap excess, and a per-core-violation count — so a
 * single-core level move is scored in O(1). Also tracks the best
 * *feasible* state visited, mirroring the side-tracking the legacy
 * full-rescore lambda did, since the chain's lowest-energy state may
 * carry a small violation a real controller cannot deploy.
 *
 * The snapshot must outlive the oracle. See AnnealEnergy for the call
 * contract.
 */
class SnapshotAnnealEnergy : public AnnealEnergy
{
  public:
    /**
     * @param snap Snapshot to score against.
     * @param penaltyPerWatt Violation penalty (kMIPS per watt).
     * @param weighted Score weighted throughput (x2000, Fig 13)
     *        instead of plain MIPS.
     */
    SnapshotAnnealEnergy(const ChipSnapshot &snap, double penaltyPerWatt,
                         bool weighted);

    double fullEnergy(const std::vector<int> &state) override;
    double moveDelta(std::size_t coord, int oldLevel,
                     int newLevel) override;
    void onCandidate(double candidateEnergy) override;
    void commit() override;
    void discard() override;

    /** Best feasible state seen (empty when none was visited). */
    const std::vector<int> &bestFeasible() const { return bestFeasible_; }

  private:
    /** Energy of the current running sums. */
    double energyOfSums() const;
    /** Track the current (speculative) state for best-feasible. */
    void noteVisited();

    const ChipSnapshot *snap_;
    double penalty_;
    bool weighted_;

    std::vector<int> state_; ///< Committed + pending levels.
    /** (coord, oldLevel) of each pending move, in application order. */
    std::vector<std::pair<std::size_t, int>> pending_;

    // Running sums over state_.
    double power_ = 0.0;  ///< Chip power incl. uncore, W.
    double objSum_ = 0.0; ///< MIPS or weighted-progress sum.
    double capEx_ = 0.0;  ///< Sum of per-core overage above Pcoremax.
    int coreViol_ = 0;    ///< Cores strictly above Pcoremax.

    // Snapshot of the sums at the start of the pending proposal, for
    // exact rollback on discard().
    double power0_ = 0.0, objSum0_ = 0.0, capEx0_ = 0.0;
    int coreViol0_ = 0;

    std::vector<int> bestFeasible_;
    double bestFeasibleObj_ = -1.0;
};

/** SAnn tuning. */
struct SAnnConfig
{
    /**
     * Objective evaluations per invocation. The paper runs 1e6;
     * the default here keeps multi-hundred-run experiments tractable
     * while staying within ~1% of the 1e6 result (see tests).
     */
    std::size_t maxEvals = 20000;
    /** Initial annealing temperature per thread (kMIPS units). */
    double tempPerThread = 0.4;
    /** Penalty weight for power violations, kMIPS per watt. */
    double penaltyPerWatt = 50.0;
    /** Seed for the annealing chain. */
    std::uint64_t seed = 0xA55;
    /** What to maximise (Fig 11: Throughput; Fig 13: Weighted). */
    PmObjective objective = PmObjective::Throughput;
};

/** The SAnn power manager. */
class SAnnManager : public PowerManager
{
  public:
    explicit SAnnManager(const SAnnConfig &config = {});

    std::string name() const override { return "SAnn"; }
    std::vector<int> selectLevels(const ChipSnapshot &snap) override;

    /**
     * Derive the annealing seed from (config seed, epoch) so each
     * epoch's decision is independent of how many earlier epochs were
     * actually evaluated (phase-sampled engine contract).
     */
    void beginEpoch(std::uint64_t epochIndex) override;

    /** Evaluations consumed by the last invocation. */
    std::size_t lastEvals() const { return lastEvals_; }

  private:
    SAnnConfig config_;
    std::size_t lastEvals_ = 0;
    std::uint64_t epochSeed_ = 0;
    bool epochSeeded_ = false;
};

} // namespace varsched

#endif // VARSCHED_CORE_SANN_HH
