#include "solver/annealing.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "solver/ziggurat.hh"

namespace varsched
{

namespace
{

/** Process-wide standard-normal ziggurat (tables built once). */
const ZigguratNormal &
zigNormal()
{
    static const ZigguratNormal z;
    return z;
}

/**
 * Proposal kernel shared — draw for draw — by both annealMinimize
 * overloads, so the full-rescore and delta-scored paths walk the same
 * Markov chain given the same seed.
 *
 * The kernel is distributionally identical to "each coordinate moves
 * with probability 1.5/n by a round(N(0, scale)) step" but draws it
 * the cheap way round: the number of moved coordinates comes from the
 * (precomputed) Binomial(n, 1.5/n) CDF with a single uniform, the
 * coordinate identities from rejection-sampled distinct indices, and
 * the Gaussian steps from the ziggurat — a handful of generator words
 * per proposal instead of one uniform per coordinate plus Box-Muller
 * transcendentals.
 */
class ProposalKernel
{
  public:
    ProposalKernel(std::uint64_t seed, std::size_t n)
        : rng_(seed), n_(n)
    {
        // CDF of Binomial(n, p) via the pmf recurrence; the tail
        // terms vanish but are kept so the distribution is exact.
        // For n = 1 the per-coordinate probability saturates at 1
        // (the historical loop always moved the only coordinate).
        const double p =
            std::min(1.5 / static_cast<double>(n), 1.0);
        countCdf_.reserve(n + 1);
        if (p >= 1.0) {
            countCdf_.assign(n, 0.0);
            countCdf_.push_back(1.0);
            return;
        }
        const double odds = p / (1.0 - p);
        double pmf = std::pow(1.0 - p, static_cast<double>(n));
        double cum = pmf;
        countCdf_.push_back(cum);
        for (std::size_t k = 0; k + 1 <= n; ++k) {
            pmf *= odds * static_cast<double>(n - k) /
                static_cast<double>(k + 1);
            cum += pmf;
            countCdf_.push_back(cum);
        }
    }

    /**
     * Draw one proposal against @p current: fills moves() with
     * (coordinate, new value) pairs, each clamped to [0, levels[i])
     * and guaranteed != current[i]. Falls back to a single +-1 nudge
     * when every Gaussian step rounded or clamped to a no-op, exactly
     * like the historical per-coordinate loop did; moves() can still
     * end up empty when the nudged coordinate is pinned.
     */
    const std::vector<std::pair<std::size_t, int>> &
    propose(const std::vector<int> &current,
            const std::vector<int> &levels, double scale)
    {
        moves_.clear();
        const double u = rng_.uniform();
        std::size_t count = 0;
        while (count < n_ && countCdf_[count] <= u)
            ++count;
        for (std::size_t c = 0; c < count; ++c) {
            std::size_t i = 0;
            for (;;) {
                i = static_cast<std::size_t>(rng_.below(n_));
                if (!picked(i))
                    break;
            }
            // The draw order defines which coordinate gets which
            // Gaussian step; the steps are i.i.d., so any order
            // yields the same proposal distribution.
            const int step = static_cast<int>(
                std::lround(zigNormal().draw(rng_) * scale));
            if (step == 0)
                continue;
            const int nv =
                std::clamp(current[i] + step, 0, levels[i] - 1);
            if (nv != current[i])
                moves_.emplace_back(i, nv);
        }
        if (moves_.empty()) {
            const auto i = static_cast<std::size_t>(rng_.below(n_));
            const int dir = rng_.uniform() < 0.5 ? -1 : 1;
            int nv = std::clamp(current[i] + dir, 0, levels[i] - 1);
            if (nv == current[i])
                nv = std::clamp(current[i] - dir, 0, levels[i] - 1);
            if (nv != current[i])
                moves_.emplace_back(i, nv);
        }
        return moves_;
    }

    /** Metropolis acceptance draw for a positive energy delta. */
    bool
    accept(double delta, double temp)
    {
        return rng_.uniform() < std::exp(-delta / temp);
    }

  private:
    bool
    picked(std::size_t i) const
    {
        for (const auto &[j, nv] : moves_)
            if (j == i)
                return true;
        return false;
    }

    Rng rng_;
    std::size_t n_;
    std::vector<double> countCdf_;
    std::vector<std::pair<std::size_t, int>> moves_;
};

/**
 * Logarithmic cooling, T_k = T0 / ln(k + e), held piecewise-constant
 * over 16-eval blocks once k >= 64: beyond that point T drifts under
 * 0.4% per eval, so the hold is statistically invisible while saving
 * the per-eval log.
 */
class CoolingSchedule
{
  public:
    explicit CoolingSchedule(double initialTemp) : t0_(initialTemp) {}

    double
    at(std::size_t evals)
    {
        if (evals < 64 || (evals & 15) == 0)
            logDen_ = std::log(static_cast<double>(evals) +
                               std::numbers::e);
        return t0_ / logDen_;
    }

  private:
    double t0_;
    double logDen_ = 1.0;
};

} // namespace

AnnealResult
annealMinimize(
    const std::vector<int> &initial, const std::vector<int> &levels,
    const std::function<double(const std::vector<int> &)> &energy,
    const AnnealOptions &opts)
{
    assert(initial.size() == levels.size());

    AnnealResult result;

    std::vector<int> current = initial;
    double currentEnergy = energy(current);
    ++result.evals;

    result.best = current;
    result.bestEnergy = currentEnergy;

    const std::size_t n = current.size();
    if (n == 0)
        return result;

    ProposalKernel kernel(opts.seed, n);
    CoolingSchedule cooling(opts.initialTemp);
    std::vector<int> candidate(n);

    while (result.evals < opts.maxEvals) {
        const double temp = cooling.at(result.evals);
        const double scale = std::max(0.5, temp);

        candidate = current;
        const auto &moves = kernel.propose(current, levels, scale);
        for (const auto &[i, nv] : moves)
            candidate[i] = nv;

        const double candEnergy = energy(candidate);
        ++result.evals;

        const double delta = candEnergy - currentEnergy;
        if (delta <= 0.0 || kernel.accept(delta, temp)) {
            current = candidate;
            currentEnergy = candEnergy;
            ++result.accepted;
            if (currentEnergy < result.bestEnergy) {
                result.bestEnergy = currentEnergy;
                result.best = current;
            }
        }
    }

    return result;
}

AnnealResult
annealMinimize(const std::vector<int> &initial,
               const std::vector<int> &levels, AnnealEnergy &energy,
               const AnnealOptions &opts)
{
    assert(initial.size() == levels.size());

    AnnealResult result;

    std::vector<int> current = initial;
    double currentEnergy = energy.fullEnergy(current);
    ++result.evals;

    result.best = current;
    result.bestEnergy = currentEnergy;

    const std::size_t n = current.size();
    if (n == 0)
        return result;

    ProposalKernel kernel(opts.seed, n);
    CoolingSchedule cooling(opts.initialTemp);
    std::size_t acceptsSinceResync = 0;

    while (result.evals < opts.maxEvals) {
        const double temp = cooling.at(result.evals);
        const double scale = std::max(0.5, temp);

        // Same kernel — and the same RNG draw sequence — as the
        // full-rescore overload, but each move is scored through the
        // oracle's O(1) delta path.
        const auto &moves = kernel.propose(current, levels, scale);
        double dE = 0.0;
        for (const auto &[i, nv] : moves)
            dE += energy.moveDelta(i, current[i], nv);

        const double candEnergy = currentEnergy + dE;
        ++result.evals;
        energy.onCandidate(candEnergy);

        if (dE <= 0.0 || kernel.accept(dE, temp)) {
            energy.commit();
            for (const auto &[i, nv] : moves)
                current[i] = nv;
            currentEnergy = candEnergy;
            ++result.accepted;
            // Running sums accumulate add/subtract rounding; resync
            // against a full rescore often enough that the drift can
            // never grow past a few ulps.
            if (++acceptsSinceResync >= 4096) {
                currentEnergy = energy.fullEnergy(current);
                acceptsSinceResync = 0;
            }
            if (currentEnergy < result.bestEnergy) {
                result.bestEnergy = currentEnergy;
                result.best = current;
            }
        } else {
            energy.discard();
        }
    }

    return result;
}

} // namespace varsched
