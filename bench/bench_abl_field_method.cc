/**
 * @file
 * Ablation: Gaussian-field generation back-end (exact dense Cholesky
 * vs circulant-embedding FFT). Verifies the two produce statistically
 * interchangeable variation maps — point variance and spatial
 * correlation at several lags — and compares generation cost. The
 * experiments use the FFT path; Cholesky is the ground truth it is
 * validated against.
 */

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "solver/stats.hh"
#include "varius/correlation.hh"
#include "varius/field.hh"

using namespace varsched;

namespace
{

struct FieldStats
{
    double variance = 0.0;
    double corrLag2 = 0.0;
    double corrLag8 = 0.0;
    double genMs = 0.0;
};

FieldStats
measure(FieldMethod method, std::size_t n, int dies)
{
    Rng rng(31337);
    Summary valSummary;
    double s2 = 0.0, s8 = 0.0, v0 = 0.0;
    std::size_t c2 = 0, c8 = 0, cv = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int d = 0; d < dies; ++d) {
        const auto f = generateField(n, 0.5, rng, method);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const double a = f.at(i, j);
                v0 += a * a;
                ++cv;
                if (j + 2 < n) {
                    s2 += a * f.at(i, j + 2);
                    ++c2;
                }
                if (j + 8 < n) {
                    s8 += a * f.at(i, j + 8);
                    ++c8;
                }
            }
        }
    }
    const auto end = std::chrono::steady_clock::now();

    FieldStats out;
    out.variance = v0 / static_cast<double>(cv);
    out.corrLag2 = s2 / static_cast<double>(c2) / out.variance;
    out.corrLag8 = s8 / static_cast<double>(c8) / out.variance;
    out.genMs = std::chrono::duration<double, std::milli>(end - start)
                    .count() /
        dies;
    return out;
}

} // namespace

int
main()
{
    bench::PerfRecorder perf("bench_abl_field_method");
    bench::banner("Ablation: Cholesky vs circulant-FFT field "
                  "generation",
                  "statistical equivalence check; not a paper figure");

    const std::size_t n = 32; // Cholesky is O(n^6); keep it small
    const int dies = static_cast<int>(envSize("VARSCHED_DIES", 24));
    const double step = 1.0 / static_cast<double>(n - 1);

    const auto chol = measure(FieldMethod::Cholesky, n, dies);
    const auto fft = measure(FieldMethod::CirculantFFT, n, dies);

    std::printf("[%zux%zu grid, %d dies per method]\n\n", n, n, dies);
    std::printf("%-14s %10s %10s %10s %12s\n", "method", "variance",
                "rho(2h)", "rho(8h)", "ms per die");
    std::printf("%-14s %10.3f %10.3f %10.3f %12.3f\n", "Cholesky",
                chol.variance, chol.corrLag2, chol.corrLag8,
                chol.genMs);
    std::printf("%-14s %10.3f %10.3f %10.3f %12.3f\n", "CirculantFFT",
                fft.variance, fft.corrLag2, fft.corrLag8, fft.genMs);
    std::printf("%-14s %10.3f %10.3f %10.3f\n", "theory", 1.0,
                sphericalRho(2.0 * step, 0.5),
                sphericalRho(8.0 * step, 0.5));
    std::printf("\n(the FFT back-end also scales to the 1M-point maps "
                "of the paper, which Cholesky cannot)\n");
    return 0;
}
