/**
 * @file
 * Tests for the incremental-evaluation paths introduced with the
 * tick-loop optimisation: the warm-started leakage-temperature fixed
 * point, the purity/bit-identity guarantees the steady-state condition
 * cache rests on, O(1) delta scoring in the SAnn annealer and the
 * exhaustive odometer (cross-checked against full rescoring), the
 * warm-started simplex, and the PerfRecorder's locked JSON merge.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "chip/die.hh"
#include "chip/sensors.hh"
#include "core/exhaustive.hh"
#include "core/linopt.hh"
#include "core/sann.hh"
#include "core/system.hh"
#include "solver/annealing.hh"
#include "power/leakage.hh"
#include "solver/rng.hh"
#include "solver/simplex.hh"
#include "varius/field.hh"

namespace varsched
{
namespace
{

DieParams
testParams()
{
    DieParams p;
    p.variation.gridSize = 48;
    return p;
}

std::vector<CoreWork>
fullLoad(const Die &die)
{
    std::vector<CoreWork> work(die.numCores());
    const auto &apps = specApplications();
    for (std::size_t c = 0; c < work.size(); ++c)
        work[c].app = &apps[c % apps.size()];
    return work;
}

/** Exact equality of two settled conditions, field by field. */
void
expectBitIdentical(const ChipCondition &a, const ChipCondition &b)
{
    EXPECT_EQ(a.corePowerW, b.corePowerW);
    EXPECT_EQ(a.coreTempC, b.coreTempC);
    EXPECT_EQ(a.coreFreqHz, b.coreFreqHz);
    EXPECT_EQ(a.coreIpc, b.coreIpc);
    EXPECT_EQ(a.coreMips, b.coreMips);
    EXPECT_EQ(a.l2TempC, b.l2TempC);
    EXPECT_EQ(a.l2PowerW, b.l2PowerW);
    EXPECT_EQ(a.totalPowerW, b.totalPowerW);
    EXPECT_EQ(a.totalMips, b.totalMips);
    EXPECT_EQ(a.spreaderC, b.spreaderC);
    EXPECT_EQ(a.sinkC, b.sinkC);
}

/** Random snapshot with increasing-in-level power/frequency tables. */
ChipSnapshot
randomSnapshot(Rng &rng, std::size_t n)
{
    ChipSnapshot snap;
    snap.voltage = {0.6, 0.7, 0.8, 0.9, 1.0};
    snap.uncorePowerW = 2.0;
    double fullPower = snap.uncorePowerW;
    double maxCore = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        CoreSnapshot core;
        core.coreId = i;
        core.threadId = i;
        const double ipc = 0.5 + 1.5 * rng.uniform();
        const double pScale = 3.0 + 4.0 * rng.uniform();
        core.refMips = 1000.0 + 4000.0 * rng.uniform();
        for (double v : snap.voltage) {
            core.freqHz.push_back(4.0e9 * (v - 0.2) / 0.8 *
                                  (0.9 + 0.2 * rng.uniform()));
            core.ipc.push_back(ipc * (0.95 + 0.1 * rng.uniform()));
            core.powerW.push_back(pScale * v * v *
                                  (1.0 + 0.05 * rng.uniform()));
        }
        maxCore = std::max(maxCore, core.powerW.back());
        fullPower += core.powerW.back();
        snap.cores.push_back(std::move(core));
    }
    snap.ptargetW = 0.55 * fullPower;
    snap.pcoreMaxW = 0.85 * maxCore;
    return snap;
}

/**
 * The pre-incremental SAnn energy: full O(n) rescore per candidate,
 * with the best-feasible side channel. Kept verbatim as the reference
 * the delta path must reproduce.
 */
std::function<double(const std::vector<int> &)>
legacyEnergy(const ChipSnapshot &snap, double penaltyPerWatt,
             bool weighted, std::vector<int> &bestFeasible,
             double &bestFeasibleMips)
{
    return [&snap, penaltyPerWatt, weighted, &bestFeasible,
            &bestFeasibleMips](const std::vector<int> &levels) {
        const double mips = weighted ? snap.weightedAt(levels) * 2000.0
                                     : snap.mipsAt(levels);
        double e = -mips / 1000.0;
        bool feasible = true;
        const double power = snap.powerAt(levels);
        if (power > snap.ptargetW) {
            e += (power - snap.ptargetW) * penaltyPerWatt;
            feasible = false;
        }
        for (std::size_t i = 0; i < snap.cores.size(); ++i) {
            const double cp = snap.cores[i].powerW[
                static_cast<std::size_t>(levels[i])];
            if (cp > snap.pcoreMaxW) {
                e += (cp - snap.pcoreMaxW) * penaltyPerWatt;
                feasible = false;
            }
        }
        if (feasible && mips > bestFeasibleMips) {
            bestFeasibleMips = mips;
            bestFeasible = levels;
        }
        return e;
    };
}

TEST(WarmStartThermal, MatchesColdFixedPointOnRandomDies)
{
    for (std::uint64_t seed : {3u, 17u, 29u}) {
        Die die(testParams(), seed);
        ChipEvaluator ev(die);
        const auto work = fullLoad(die);
        const int top = static_cast<int>(die.maxLevel());

        std::vector<int> levelsA(die.numCores(), top);
        std::vector<int> levelsB(die.numCores());
        for (std::size_t c = 0; c < levelsB.size(); ++c)
            levelsB[c] = static_cast<int>(c % (die.maxLevel() + 1));

        const auto condA = ev.evaluate(work, levelsA);
        const auto cold = ev.evaluate(work, levelsB);
        const auto warm = ev.evaluate(work, levelsB, 0.0, &condA);

        for (std::size_t c = 0; c < die.numCores(); ++c)
            EXPECT_NEAR(warm.coreTempC[c], cold.coreTempC[c], 0.1)
                << "seed " << seed << " core " << c;
        for (std::size_t l = 0; l < cold.l2TempC.size(); ++l)
            EXPECT_NEAR(warm.l2TempC[l], cold.l2TempC[l], 0.1);
        EXPECT_NEAR(warm.totalPowerW, cold.totalPowerW,
                    0.001 * cold.totalPowerW);
        EXPECT_NEAR(warm.totalMips, cold.totalMips,
                    0.001 * cold.totalMips);
    }
}

TEST(WarmStartThermal, RepeatedEvaluateIsBitIdentical)
{
    // The steady-state condition cache reuses a previous solution
    // verbatim when (work, levels) are unchanged; that is only exact
    // if evaluate() is a pure function whose scratch reuse never
    // leaks state between calls.
    Die die(testParams(), 11);
    ChipEvaluator ev(die);
    const auto work = fullLoad(die);
    const std::vector<int> a(die.numCores(), 8);
    const std::vector<int> b(die.numCores(), 2);

    const auto first = ev.evaluate(work, a);
    const auto other = ev.evaluate(work, b); // pollute scratch
    (void)other;
    const auto again = ev.evaluate(work, a);
    expectBitIdentical(first, again);
}

TEST(WarmStartThermal, EvaluateIntoSupportsAliasedWarmSeed)
{
    Die die(testParams(), 11);
    ChipEvaluator ev(die);
    const auto work = fullLoad(die);
    const std::vector<int> a(die.numCores(), 8);
    std::vector<int> b(die.numCores(), 4);

    ChipCondition out = ev.evaluate(work, a);
    const ChipCondition seedCopy = out;
    const auto ref = ev.evaluate(work, b, 0.0, &seedCopy);
    ev.evaluateInto(out, work, b, 0.0, &out); // warm seed aliases out
    expectBitIdentical(out, ref);
}

TEST(SystemIncremental, WarmOnMatchesWarmOffWithinHalfPercent)
{
    Die die(testParams(), 7);
    const auto &apps = specApplications();
    std::vector<const AppProfile *> threads;
    for (std::size_t t = 0; t < 8; ++t)
        threads.push_back(&apps[t % apps.size()]);

    SystemConfig config;
    config.sched = SchedAlgo::VarFAppIPC;
    config.pm = PmKind::LinOpt;
    config.ptargetW = 30.0;
    config.durationMs = 120.0;
    config.seed = 5;

    SystemConfig coldCfg = config;
    coldCfg.warmStartThermal = false;

    const auto warm = SystemSimulator(die, threads, config).run();
    const auto cold = SystemSimulator(die, threads, coldCfg).run();

    EXPECT_NEAR(warm.avgMips, cold.avgMips, 0.005 * cold.avgMips);
    EXPECT_NEAR(warm.avgPowerW, cold.avgPowerW,
                0.005 * cold.avgPowerW);
    EXPECT_NEAR(warm.avgWeightedIpc, cold.avgWeightedIpc,
                0.005 * cold.avgWeightedIpc);
    EXPECT_NEAR(warm.energyJ, cold.energyJ, 0.005 * cold.energyJ);

    // The phase timers must account for actual work.
    EXPECT_GT(warm.physicsSec, 0.0);
    EXPECT_GT(warm.pmSec, 0.0);
    EXPECT_GT(warm.schedSec, 0.0);
}

TEST(SystemIncremental, RunsAreDeterministic)
{
    // The condition cache and scratch reuse must not make run()
    // depend on anything but (die, workload, config).
    Die die(testParams(), 13);
    const auto &apps = specApplications();
    std::vector<const AppProfile *> threads;
    for (std::size_t t = 0; t < 6; ++t)
        threads.push_back(&apps[t % apps.size()]);

    SystemConfig config;
    config.pm = PmKind::FoxtonStar;
    config.ptargetW = 25.0;
    config.durationMs = 80.0;
    config.seed = 9;

    const auto r1 = SystemSimulator(die, threads, config).run();
    const auto r2 = SystemSimulator(die, threads, config).run();
    EXPECT_EQ(r1.powerTrace, r2.powerTrace);
    EXPECT_EQ(r1.avgMips, r2.avgMips);
    EXPECT_EQ(r1.energyJ, r2.energyJ);
}

TEST(SAnnDelta, AnnealerMatchesLegacyFullRescore)
{
    Rng rng(0xFEED);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 6);
        const auto snap = randomSnapshot(rng, n);
        for (const bool weighted : {false, true}) {
            std::vector<int> legacyBest;
            double legacyBestMips = -1.0;
            const auto legacy = legacyEnergy(snap, 50.0, weighted,
                                             legacyBest,
                                             legacyBestMips);
            SnapshotAnnealEnergy delta(snap, 50.0, weighted);

            AnnealOptions opts;
            opts.maxEvals = 4000;
            opts.initialTemp = 0.4 * static_cast<double>(n);
            opts.seed = 0xA55 + static_cast<std::uint64_t>(trial);

            const std::vector<int> initial(n, 4);
            const std::vector<int> bounds(n, 5);
            const auto a = annealMinimize(initial, bounds, legacy,
                                          opts);
            const auto b = annealMinimize(initial, bounds, delta,
                                          opts);

            EXPECT_EQ(a.best, b.best)
                << "trial " << trial << " weighted " << weighted;
            EXPECT_EQ(a.evals, b.evals);
            EXPECT_EQ(a.accepted, b.accepted);
            EXPECT_NEAR(a.bestEnergy, b.bestEnergy,
                        1e-9 * std::max(1.0, std::abs(a.bestEnergy)));
            EXPECT_EQ(legacyBest, delta.bestFeasible());
        }
    }
}

TEST(SAnnDelta, EvalThroughputIsLevelWithCoreCount)
{
    // The delta path scores each move in O(1); going 5 -> 20 cores
    // must not scale per-eval cost anywhere near the 4x a full
    // rescore would. Allow 2x for the O(n) proposal draws.
    Rng rng(0xBEEF);
    const auto small = randomSnapshot(rng, 5);
    const auto large = randomSnapshot(rng, 20);

    SAnnConfig cfg;
    cfg.maxEvals = 60000;
    SAnnManager pm(cfg);

    const auto timeOne = [&](const ChipSnapshot &snap) {
        (void)pm.selectLevels(snap); // warm the caches
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            const double t0 = bench::nowSeconds();
            (void)pm.selectLevels(snap);
            best = std::min(best, bench::nowSeconds() - t0);
        }
        return best / static_cast<double>(cfg.maxEvals);
    };

    const double perEvalSmall = timeOne(small);
    const double perEvalLarge = timeOne(large);
    EXPECT_LT(perEvalLarge, 2.0 * perEvalSmall)
        << "per-eval " << perEvalSmall << "s at 5 cores vs "
        << perEvalLarge << "s at 20 cores";
}

TEST(ExhaustiveDelta, MatchesFullRescoreOnRandomSnapshots)
{
    Rng rng(0xCAFE);
    for (int trial = 0; trial < 6; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 2);
        const auto snap = randomSnapshot(rng, n);
        for (const auto objective :
             {PmObjective::Throughput, PmObjective::Weighted}) {
            ExhaustiveManager pm(20'000'000, objective);
            const auto fast = pm.selectLevels(snap);
            EXPECT_EQ(pm.lastStates(),
                      static_cast<std::size_t>(std::pow(5.0,
                          static_cast<double>(n))));

            // Reference: the pre-incremental full-rescore odometer.
            std::vector<int> state(n, 0), best(n, 0);
            double bestMips = -1.0;
            const int numLevels =
                static_cast<int>(snap.voltage.size());
            for (;;) {
                if (snap.feasible(state)) {
                    const double mips =
                        objective == PmObjective::Weighted
                        ? snap.weightedAt(state)
                        : snap.mipsAt(state);
                    if (mips > bestMips) {
                        bestMips = mips;
                        best = state;
                    }
                }
                std::size_t pos = 0;
                while (pos < n) {
                    if (++state[pos] < numLevels)
                        break;
                    state[pos] = 0;
                    ++pos;
                }
                if (pos == n)
                    break;
            }
            if (bestMips < 0.0)
                best.assign(n, 0);
            EXPECT_EQ(fast, best)
                << "trial " << trial << " objective "
                << static_cast<int>(objective);
        }
    }
}

TEST(ExhaustiveDelta, AllInfeasibleReturnsFloor)
{
    Rng rng(0x1234);
    auto snap = randomSnapshot(rng, 3);
    snap.ptargetW = 0.1; // unreachable even at the bottom level
    ExhaustiveManager pm;
    EXPECT_EQ(pm.selectLevels(snap), (std::vector<int>{0, 0, 0}));
}

TEST(SimplexWarm, WarmObjectiveMatchesColdTo1e9)
{
    Rng rng(0x5EED);
    for (int trial = 0; trial < 12; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(trial % 5);
        LinearProgram lp;
        lp.objective.resize(n);
        for (auto &c : lp.objective)
            c = 0.5 + rng.uniform();
        std::vector<double> budget(n);
        for (auto &b : budget)
            b = 0.5 + rng.uniform();
        lp.addRow(budget, 0.3 * static_cast<double>(n));
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> row(n, 0.0);
            row[i] = 1.0;
            lp.addRow(row, 0.2 + rng.uniform());
        }

        std::vector<std::size_t> basis;
        const auto cold = solveSimplex(lp, nullptr, &basis);
        ASSERT_EQ(cold.status, LpResult::Status::Optimal);
        ASSERT_FALSE(basis.empty());

        // Perturb every coefficient slightly — the successive-DVFS-
        // interval situation — and compare warm vs cold solves.
        LinearProgram lp2 = lp;
        for (auto &c : lp2.objective)
            c *= 1.0 + 0.01 * (rng.uniform() - 0.5);
        for (auto &row : lp2.rows)
            for (auto &v : row)
                v *= 1.0 + 0.01 * (rng.uniform() - 0.5);
        for (auto &b : lp2.rhs)
            b *= 1.0 + 0.01 * (rng.uniform() - 0.5);

        const auto coldRef = solveSimplex(lp2);
        const auto warm = solveSimplex(lp2, &basis, nullptr);
        ASSERT_EQ(warm.status, coldRef.status);
        ASSERT_EQ(warm.status, LpResult::Status::Optimal);
        EXPECT_NEAR(warm.objective, coldRef.objective,
                    1e-9 * std::max(1.0, std::abs(coldRef.objective)));
    }
}

TEST(SimplexWarm, UnperturbedWarmSolveAdoptsBasis)
{
    LinearProgram lp;
    lp.objective = {2.0, 1.0};
    lp.addRow({1.0, 1.0}, 1.5);
    lp.addRow({1.0, 0.0}, 1.0);
    lp.addRow({0.0, 1.0}, 1.0);

    std::vector<std::size_t> basis;
    const auto cold = solveSimplex(lp, nullptr, &basis);
    ASSERT_EQ(cold.status, LpResult::Status::Optimal);

    const auto warm = solveSimplex(lp, &basis, nullptr);
    ASSERT_EQ(warm.status, LpResult::Status::Optimal);
    EXPECT_TRUE(warm.warmStarted);
    // Adopting the basis costs pivots too, but never more than the
    // cold two-phase solve, and phase 2 has nothing left to improve.
    EXPECT_LE(warm.pivots, cold.pivots);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-12);
}

TEST(SimplexWarm, GarbageBasisFallsBackToColdSolve)
{
    LinearProgram lp;
    lp.objective = {1.0, 1.0};
    lp.addRow({1.0, 1.0}, 1.0);
    lp.addRow({1.0, 0.0}, 0.8);
    lp.addRow({0.0, 1.0}, 0.8);

    const auto cold = solveSimplex(lp);
    ASSERT_EQ(cold.status, LpResult::Status::Optimal);

    // Out-of-range column (an artificial index), duplicate columns,
    // and wrong dimension must all be rejected, not crash.
    for (const std::vector<std::size_t> &bad :
         {std::vector<std::size_t>{99, 1, 2},
          std::vector<std::size_t>{1, 1, 2},
          std::vector<std::size_t>{1, 2}}) {
        const auto r = solveSimplex(lp, &bad, nullptr);
        EXPECT_EQ(r.status, LpResult::Status::Optimal);
        EXPECT_FALSE(r.warmStarted);
        EXPECT_NEAR(r.objective, cold.objective, 1e-12);
    }
}

TEST(LinOptWarm, WarmManagerMatchesColdManager)
{
    Rng rng(0xD1CE);
    auto snap = randomSnapshot(rng, 8);

    LinOptConfig coldCfg;
    coldCfg.warmStart = false;
    LinOptManager warmPm; // warmStart defaults on
    LinOptManager coldPm(coldCfg);

    const auto w1 = warmPm.selectLevels(snap);
    const auto c1 = coldPm.selectLevels(snap);
    EXPECT_EQ(w1, c1);
    EXPECT_FALSE(warmPm.lastDiag().warmStarted)
        << "first solve has no basis to warm-start from";

    // Drift the sensor readings slightly, as across DVFS intervals.
    for (auto &core : snap.cores)
        for (auto &p : core.powerW)
            p *= 1.0 + 0.005 * (rng.uniform() - 0.5);

    const auto w2 = warmPm.selectLevels(snap);
    const auto c2 = coldPm.selectLevels(snap);
    EXPECT_EQ(w2, c2);
    EXPECT_TRUE(warmPm.lastDiag().warmStarted);
}

TEST(PerfRecorder, ConcurrentMergesKeepEveryEntry)
{
    const std::string path =
        ::testing::TempDir() + "varsched_bench_merge.json";
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    ::setenv("VARSCHED_BENCH_JSON", path.c_str(), 1);

    constexpr int kWriters = 8;
    {
        std::vector<std::thread> writers;
        for (int i = 0; i < kWriters; ++i) {
            writers.emplace_back([i]() {
                bench::PerfRecorder rec("bench_merge_t" +
                                        std::to_string(i));
                // Destructor merges the entry.
            });
        }
        for (auto &t : writers)
            t.join();
    }
    ::unsetenv("VARSCHED_BENCH_JSON");

    std::FILE *in = std::fopen(path.c_str(), "r");
    ASSERT_NE(in, nullptr);
    int entries = 0;
    char line[1024];
    while (std::fgets(line, sizeof line, in)) {
        if (std::string(line).find("\"bench\": \"bench_merge_t") !=
            std::string::npos)
            ++entries;
    }
    std::fclose(in);
    EXPECT_EQ(entries, kWriters)
        << "concurrent merges dropped entries";
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
}

// The whole-sample field cache must replay a generation exactly: same
// values AND same post-generation RNG state, so downstream draws (core
// timing, workloads) continue identically whether the field came from
// the cache or from a fresh FFT synthesis.
TEST(FieldSampleCache, ReplaysGenerationBitIdentically)
{
    clearFieldSampleCache();
    ASSERT_EQ(fieldSampleCacheSize(), 0u);

    Rng a(0xF1E1D);
    const FieldSample first = generateField(96, 0.5, a);
    const double afterDrawA = a.uniform();
    EXPECT_EQ(fieldSampleCacheSize(), 1u);

    Rng b(0xF1E1D); // identical pre-generation state => cache hit
    const FieldSample second = generateField(96, 0.5, b);
    const double afterDrawB = b.uniform();
    EXPECT_EQ(fieldSampleCacheSize(), 1u);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t r = 0; r < first.size(); ++r)
        for (std::size_t c = 0; c < first.size(); ++c)
            ASSERT_EQ(first.at(r, c), second.at(r, c));
    EXPECT_EQ(afterDrawA, afterDrawB);

    // A different pre-generation state must miss, not alias.
    Rng c(0xF1E1E);
    const FieldSample third = generateField(96, 0.5, c);
    EXPECT_EQ(fieldSampleCacheSize(), 2u);
    EXPECT_NE(third.at(0, 0), first.at(0, 0));

    clearFieldSampleCache();
    EXPECT_EQ(fieldSampleCacheSize(), 0u);
}

// corePowerSampled on sampleCoreVth output is the exact fold
// corePower performs — bit-equal, not just close — which is what lets
// the Die pre-sample its field at manufacture without perturbing any
// downstream physics.
TEST(LeakageSampleCache, SampledFoldMatchesLiveSamplingBitExactly)
{
    const DieParams params = testParams();
    Rng rng(0x1EAF);
    const VariationMap map = generateVariationMap(params.variation, rng);
    const Floorplan plan(params.numCores, params.dieAreaMm2);
    const LeakageModel model(params.leakage);

    for (std::size_t core = 0; core < params.numCores; core += 5) {
        const std::vector<double> samples =
            model.sampleCoreVth(map, plan, core);
        ASSERT_EQ(samples.size(), params.leakage.samplesPerEdge *
                                      params.leakage.samplesPerEdge);
        for (const double v : {0.6, 0.85, 1.0}) {
            for (const double t : {45.0, 60.0, 95.0}) {
                EXPECT_EQ(model.corePower(map, plan, core, v, t, -0.02),
                          model.corePowerSampled(samples,
                                                 map.vthSigmaRandom(), v,
                                                 t, -0.02));
            }
        }
    }

    // And the die's own cached path agrees with live sampling.
    const Die die(params, 0xD1E5EED);
    for (std::size_t core = 0; core < die.numCores(); core += 7) {
        EXPECT_EQ(die.leakagePower(core, 0.9, 72.5),
                  model.corePower(die.variationMap(), die.floorplan(),
                                  core, 0.9, 72.5, die.vthBias(core)));
    }
}

} // namespace
} // namespace varsched
