#include "core/sann.hh"

#include <algorithm>

#include "runtime/metrics.hh"
#include "solver/annealing.hh"
#include "solver/rng.hh"

namespace varsched
{

SAnnManager::SAnnManager(const SAnnConfig &config) : config_(config)
{
}

SnapshotAnnealEnergy::SnapshotAnnealEnergy(const ChipSnapshot &snap,
                                           double penaltyPerWatt,
                                           bool weighted)
    : snap_(&snap), penalty_(penaltyPerWatt), weighted_(weighted)
{
}

double
SnapshotAnnealEnergy::energyOfSums() const
{
    const double obj = weighted_ ? objSum_ * 2000.0 : objSum_;
    double e = -obj / 1000.0;
    if (power_ > snap_->ptargetW)
        e += (power_ - snap_->ptargetW) * penalty_;
    e += capEx_ * penalty_;
    return e;
}

void
SnapshotAnnealEnergy::noteVisited()
{
    if (power_ > snap_->ptargetW || coreViol_ > 0)
        return;
    const double obj = weighted_ ? objSum_ * 2000.0 : objSum_;
    if (obj > bestFeasibleObj_) {
        bestFeasibleObj_ = obj;
        bestFeasible_ = state_;
    }
}

double
SnapshotAnnealEnergy::fullEnergy(const std::vector<int> &state)
{
    state_ = state;
    pending_.clear();
    power_ = snap_->uncorePowerW;
    objSum_ = 0.0;
    capEx_ = 0.0;
    coreViol_ = 0;
    for (std::size_t i = 0; i < snap_->cores.size(); ++i) {
        const CoreSnapshot &c = snap_->cores[i];
        const auto l = static_cast<std::size_t>(state[i]);
        const double cp = c.powerW[l];
        power_ += cp;
        objSum_ += weighted_
            ? c.ipc[l] * c.freqHz[l] / 1.0e6 / c.refMips
            : c.ipc[l] * c.freqHz[l] / 1.0e6;
        if (cp > snap_->pcoreMaxW) {
            capEx_ += cp - snap_->pcoreMaxW;
            ++coreViol_;
        }
    }
    noteVisited();
    return energyOfSums();
}

double
SnapshotAnnealEnergy::moveDelta(std::size_t coord, int oldLevel,
                                int newLevel)
{
    if (pending_.empty()) {
        power0_ = power_;
        objSum0_ = objSum_;
        capEx0_ = capEx_;
        coreViol0_ = coreViol_;
    }
    const double before = energyOfSums();
    const CoreSnapshot &c = snap_->cores[coord];
    const auto lo = static_cast<std::size_t>(oldLevel);
    const auto ln = static_cast<std::size_t>(newLevel);
    const double pOld = c.powerW[lo];
    const double pNew = c.powerW[ln];
    power_ += pNew - pOld;
    objSum_ += weighted_
        ? (c.ipc[ln] * c.freqHz[ln] - c.ipc[lo] * c.freqHz[lo]) /
              1.0e6 / c.refMips
        : (c.ipc[ln] * c.freqHz[ln] - c.ipc[lo] * c.freqHz[lo]) /
              1.0e6;
    if (pOld > snap_->pcoreMaxW) {
        capEx_ -= pOld - snap_->pcoreMaxW;
        --coreViol_;
    }
    if (pNew > snap_->pcoreMaxW) {
        capEx_ += pNew - snap_->pcoreMaxW;
        ++coreViol_;
    }
    pending_.emplace_back(coord, oldLevel);
    state_[coord] = newLevel;
    return energyOfSums() - before;
}

void
SnapshotAnnealEnergy::onCandidate(double candidateEnergy)
{
    (void)candidateEnergy;
    noteVisited();
}

void
SnapshotAnnealEnergy::commit()
{
    pending_.clear();
}

void
SnapshotAnnealEnergy::discard()
{
    if (pending_.empty())
        return;
    for (auto it = pending_.rbegin(); it != pending_.rend(); ++it)
        state_[it->first] = it->second;
    pending_.clear();
    power_ = power0_;
    objSum_ = objSum0_;
    capEx_ = capEx0_;
    coreViol_ = coreViol0_;
}

std::vector<int>
SAnnManager::selectLevels(const ChipSnapshot &snap)
{
    const std::size_t n = snap.cores.size();
    lastEvals_ = 0;
    if (n == 0)
        return {};

    const int numLevels = static_cast<int>(snap.voltage.size());

    // Greedy initial state: top levels, then per-core cap, then
    // round-robin down to the budget (the Foxton*-style heuristic the
    // paper seeds SAnn with).
    std::vector<int> initial(n, numLevels - 1);
    for (std::size_t i = 0; i < n; ++i) {
        while (initial[i] > 0 &&
               snap.cores[i].powerW[static_cast<std::size_t>(
                   initial[i])] > snap.pcoreMaxW) {
            --initial[i];
        }
    }
    std::size_t cursor = 0, stuck = 0;
    while (snap.powerAt(initial) > snap.ptargetW && stuck < n) {
        if (initial[cursor] > 0) {
            --initial[cursor];
            stuck = 0;
        } else {
            ++stuck;
        }
        cursor = (cursor + 1) % n;
    }

    // Energy: -throughput (kMIPS) plus steep penalties for violating
    // the chip or per-core budgets, so infeasible states are passable
    // but never optimal. The oracle keeps running sums so each move is
    // scored in O(1), and tracks the best *feasible* state visited on
    // the side — the chain's lowest-energy state may carry a tiny
    // violation, which a real controller cannot deploy. Weighted mode
    // scores normalised progress rescaled (x2000) into the same
    // numeric range as kMIPS so the annealing temperature and penalty
    // weights keep their meaning.
    SnapshotAnnealEnergy energy(
        snap, config_.penaltyPerWatt,
        config_.objective == PmObjective::Weighted);

    AnnealOptions opts;
    opts.maxEvals = config_.maxEvals;
    // The paper raises the initial AT with problem complexity.
    opts.initialTemp = config_.tempPerThread * static_cast<double>(n);
    opts.seed = epochSeeded_ ? epochSeed_ : config_.seed;

    const std::vector<int> levelBounds(n, numLevels);
    AnnealResult result =
        annealMinimize(initial, levelBounds, energy, opts);
    lastEvals_ = result.evals;
    {
        static metrics::Counter &evals =
            metrics::Registry::global().counter("sann.evals");
        static metrics::Counter &accepted =
            metrics::Registry::global().counter("sann.accepted");
        static metrics::Counter &rejected =
            metrics::Registry::global().counter("sann.rejected");
        evals.add(result.evals);
        accepted.add(result.accepted);
        rejected.add(result.evals >= result.accepted
                         ? result.evals - result.accepted
                         : 0);
    }

    if (snap.feasible(result.best))
        return result.best;
    // Chain optimum carries a violation: deploy the best feasible
    // state actually visited, or the greedy seed as a last resort.
    if (!energy.bestFeasible().empty())
        return energy.bestFeasible();
    return initial;
}

void
SAnnManager::beginEpoch(std::uint64_t epochIndex)
{
    epochSeed_ = deriveSeed(config_.seed, 0xA55A, epochIndex);
    epochSeeded_ = true;
}

} // namespace varsched
