/**
 * @file
 * Alpha-power-law MOSFET delay model (Sakurai-Newton) with
 * temperature effects, used to translate local Vth/Leff into gate and
 * path delays. Delay rises with Leff, falls with gate overdrive
 * (V - Vth)^alpha, and degrades with temperature through carrier
 * mobility; Vth itself drops slightly as temperature rises.
 */

#ifndef VARSCHED_TIMING_ALPHAPOWER_HH
#define VARSCHED_TIMING_ALPHAPOWER_HH

namespace varsched
{

/** Device-level delay parameters. */
struct DelayParams
{
    /** Velocity-saturation exponent (~1.3 for short channels). */
    double alpha = 1.55;
    /** Vth decrease per Kelvin of warming, volts (BSIM-like). */
    double vthTempCoeff = 0.00035;
    /** Mobility scales as (T/Tref)^-mobilityExponent, T in Kelvin. */
    double mobilityExponent = 1.5;
    /** Temperature at which Vth maps are specified, Celsius. */
    double refTempC = 60.0;
};

/** Threshold voltage at temperature @p tempC given its 60 C value. */
double vthAtTemp(double vthRef, double tempC, const DelayParams &params);

/**
 * Relative gate delay (arbitrary units — calibrated elsewhere).
 *
 * d = Leff * V / (mobility(T) * (V - Vth(T))^alpha)
 *
 * @param leff Normalised effective gate length (nominal 1).
 * @param vthRef Threshold voltage at the 60 C reference, volts.
 * @param v Supply voltage, volts.
 * @param tempC Junction temperature, Celsius.
 * @return Relative delay; a very large value when the overdrive
 *         collapses (V close to or below Vth), so the core simply
 *         cannot clock at that voltage.
 */
double gateDelay(double leff, double vthRef, double v, double tempC,
                 const DelayParams &params);

} // namespace varsched

#endif // VARSCHED_TIMING_ALPHAPOWER_HH
