/**
 * @file
 * Two-phase primal simplex solver for small dense linear programs.
 *
 * This is the optimisation engine behind LinOpt (Section 4.3.1 of the
 * paper): maximise a linear throughput objective subject to the chip
 * power budget, per-core power caps, and voltage bounds. Problems are
 * tiny (<= 20 variables, ~40 constraints) so a dense tableau with
 * Bland's anti-cycling rule is both simple and fast — the paper reports
 * microsecond solve times, which Fig 15's bench reproduces.
 */

#ifndef VARSCHED_SOLVER_SIMPLEX_HH
#define VARSCHED_SOLVER_SIMPLEX_HH

#include <cstddef>
#include <vector>

namespace varsched
{

/**
 * A linear program in canonical inequality form:
 *   maximise  cᵀx
 *   subject to  A·x <= b,  x >= 0.
 * Right-hand sides may be negative (phase 1 handles them).
 */
struct LinearProgram
{
    /** Objective coefficients c (one per variable). */
    std::vector<double> objective;
    /** Constraint matrix rows A[i]. Each must match objective size. */
    std::vector<std::vector<double>> rows;
    /** Right-hand sides b[i], one per row. */
    std::vector<double> rhs;

    /** Number of decision variables. */
    std::size_t numVars() const { return objective.size(); }
    /** Number of constraints. */
    std::size_t numRows() const { return rows.size(); }

    /** Append a constraint row·x <= bound. */
    void addRow(std::vector<double> row, double bound);
};

/** Outcome of a simplex solve. */
struct LpResult
{
    enum class Status { Optimal, Infeasible, Unbounded };

    Status status = Status::Infeasible;
    /** Optimal assignment (valid only when status == Optimal). */
    std::vector<double> x;
    /** Objective value at x. */
    double objective = 0.0;
    /** Simplex pivots performed across both phases. */
    std::size_t pivots = 0;
    /** True when the result came from an adopted warm basis. */
    bool warmStarted = false;
};

/**
 * Solve the given LP with the two-phase primal simplex method.
 *
 * Phase 1 constructs a feasible basis via artificial variables (only
 * for rows whose slack basis is infeasible); phase 2 optimises the
 * real objective. Bland's rule guarantees termination.
 *
 * @param warmBasis Optional basis (one column index per row, from a
 *        previous solve's @p basisOut) to try before the cold
 *        two-phase solve. When the basis can be adopted on the new
 *        coefficients and is still primal feasible, phase 1 is
 *        skipped entirely and phase 2 starts from it — a handful of
 *        pivots when successive LPs differ only slightly, as across
 *        DVFS intervals. Any failure (dimension mismatch, singular or
 *        stale basis, infeasible right-hand sides) silently falls
 *        back to the cold solve, so the result is identical to a cold
 *        solve up to the usual simplex tolerances either way.
 * @param basisOut When non-null, receives the optimal basis for
 *        warm-starting the next call (cleared when the solve did not
 *        reach Optimal; may name artificial columns after a cold
 *        solve of a degenerate problem, which a later warm attempt
 *        detects and rejects).
 */
LpResult solveSimplex(const LinearProgram &lp,
                      const std::vector<std::size_t> *warmBasis = nullptr,
                      std::vector<std::size_t> *basisOut = nullptr);

} // namespace varsched

#endif // VARSCHED_SOLVER_SIMPLEX_HH
