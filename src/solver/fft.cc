#include "solver/fft.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numbers>

namespace varsched
{

namespace
{

/**
 * Forward twiddle table for length-n transforms: w[k] = exp(-2πik/n)
 * for k < n/2. At butterfly stage `len` the needed factor is
 * w[k * (n/len)], so one table serves every stage. thread_local —
 * the parallel batch runner transforms concurrently and only a few
 * distinct lengths ever occur per thread.
 */
const std::vector<std::complex<double>> &
twiddleTable(std::size_t n)
{
    static thread_local std::map<std::size_t,
                                 std::vector<std::complex<double>>> cache;
    std::vector<std::complex<double>> &t = cache[n];
    if (t.empty()) {
        t.resize(n / 2);
        for (std::size_t k = 0; k < n / 2; ++k) {
            const double ang = -2.0 * std::numbers::pi *
                static_cast<double>(k) / static_cast<double>(n);
            t[k] = std::complex<double>(std::cos(ang), std::sin(ang));
        }
    }
    return t;
}

/**
 * Blocked out-of-place transpose: dst (cols x rows) = src (rows x
 * cols) transposed. 32x32 tiles keep both the source row walk and the
 * destination row walk inside the cache for the large (512²+)
 * circulant-embedding grids.
 */
void
transposeBlocked(const std::complex<double> *src,
                 std::complex<double> *dst, std::size_t rows,
                 std::size_t cols)
{
    constexpr std::size_t kBlock = 32;
    for (std::size_t rb = 0; rb < rows; rb += kBlock) {
        const std::size_t rEnd = std::min(rows, rb + kBlock);
        for (std::size_t cb = 0; cb < cols; cb += kBlock) {
            const std::size_t cEnd = std::min(cols, cb + kBlock);
            for (std::size_t r = rb; r < rEnd; ++r)
                for (std::size_t c = cb; c < cEnd; ++c)
                    dst[c * rows + r] = src[r * cols + c];
        }
    }
}

} // namespace

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::complex<double> *data, std::size_t n, bool inverse)
{
    assert(isPowerOfTwo(n));
    if (n <= 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    const std::vector<std::complex<double>> &tw = twiddleTable(n);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        const std::size_t stride = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> *lo = data + i;
            std::complex<double> *hi = lo + half;
            for (std::size_t k = 0; k < half; ++k) {
                const std::complex<double> &t = tw[k * stride];
                const std::complex<double> w =
                    inverse ? std::conj(t) : t;
                const std::complex<double> u = lo[k];
                const std::complex<double> v = hi[k] * w;
                lo[k] = u + v;
                hi[k] = u - v;
            }
        }
    }
}

void
fft(std::vector<std::complex<double>> &data, bool inverse)
{
    fft(data.data(), data.size(), inverse);
}

void
fft2d(std::vector<std::complex<double>> &data, std::size_t rows,
      std::size_t cols, bool inverse)
{
    assert(data.size() == rows * cols);
    assert(isPowerOfTwo(rows) && isPowerOfTwo(cols));

    for (std::size_t r = 0; r < rows; ++r)
        fft(data.data() + r * cols, cols, inverse);

    // Column pass: transpose so former columns are contiguous rows,
    // transform them in place, transpose back. The two blocked
    // transposes are far cheaper than n strided gathers on the big
    // embedding grids. thread_local scratch: concurrent die
    // manufacture transforms from several pool workers at once.
    static thread_local std::vector<std::complex<double>> scratch;
    scratch.resize(rows * cols);
    transposeBlocked(data.data(), scratch.data(), rows, cols);
    for (std::size_t c = 0; c < cols; ++c)
        fft(scratch.data() + c * rows, rows, inverse);
    transposeBlocked(scratch.data(), data.data(), cols, rows);
}

} // namespace varsched
