/**
 * @file
 * Tests for the variation-aware scheduling algorithms of Table 1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/sched.hh"

namespace varsched
{
namespace
{

DieParams
testParams()
{
    DieParams p;
    p.variation.gridSize = 48;
    return p;
}

class SchedFixture : public ::testing::Test
{
  protected:
    SchedFixture() : die_(testParams(), 21) {}

    std::vector<const AppProfile *>
    workload(std::size_t n)
    {
        Rng rng(5);
        return randomWorkload(n, rng);
    }

    Die die_;
};

TEST(SortedIndices, OrdersCorrectly)
{
    const auto asc = sortedIndices({3.0, 1.0, 2.0});
    EXPECT_EQ(asc, (std::vector<std::size_t>{1, 2, 0}));
    const auto desc = sortedIndices({3.0, 1.0, 2.0}, true);
    EXPECT_EQ(desc, (std::vector<std::size_t>{0, 2, 1}));
}

TEST_F(SchedFixture, AssignsDistinctCores)
{
    Rng rng(1);
    for (SchedAlgo algo :
         {SchedAlgo::Random, SchedAlgo::VarP, SchedAlgo::VarPAppP,
          SchedAlgo::VarF, SchedAlgo::VarFAppIPC}) {
        const auto apps = workload(8);
        const auto asg = scheduleThreads(algo, die_, apps, rng);
        ASSERT_EQ(asg.size(), 8u);
        std::set<std::size_t> used(asg.begin(), asg.end());
        EXPECT_EQ(used.size(), 8u) << schedAlgoName(algo);
        for (std::size_t core : asg)
            EXPECT_LT(core, die_.numCores());
    }
}

TEST_F(SchedFixture, VarPSelectsLowestStaticPowerCores)
{
    Rng rng(2);
    const std::size_t n = 6;
    const auto asg =
        scheduleThreads(SchedAlgo::VarP, die_, workload(n), rng);

    // The chosen cores must be exactly the n lowest-static-power ones.
    std::vector<double> staticPower(die_.numCores());
    for (std::size_t c = 0; c < die_.numCores(); ++c)
        staticPower[c] = die_.staticPowerAt(c, die_.maxLevel());
    auto ranked = sortedIndices(staticPower);
    std::set<std::size_t> expected(ranked.begin(),
                                   ranked.begin() + n);
    for (std::size_t core : asg)
        EXPECT_TRUE(expected.count(core)) << "core " << core;
}

TEST_F(SchedFixture, VarFSelectsFastestCores)
{
    Rng rng(3);
    const std::size_t n = 5;
    const auto asg =
        scheduleThreads(SchedAlgo::VarF, die_, workload(n), rng);
    std::vector<double> fmax(die_.numCores());
    for (std::size_t c = 0; c < die_.numCores(); ++c)
        fmax[c] = die_.maxFreq(c);
    auto ranked = sortedIndices(fmax, true);
    std::set<std::size_t> expected(ranked.begin(),
                                   ranked.begin() + n);
    for (std::size_t core : asg)
        EXPECT_TRUE(expected.count(core));
}

TEST_F(SchedFixture, VarFAppIpcPairsFastThreadsWithFastCores)
{
    Rng rng(4);
    // Two very different threads: vortex (IPC 1.2) and mcf (IPC 0.1).
    std::vector<const AppProfile *> apps = {
        &findApplication("mcf"), &findApplication("vortex")};
    const auto asg =
        scheduleThreads(SchedAlgo::VarFAppIPC, die_, apps, rng);
    EXPECT_GT(die_.maxFreq(asg[1]), die_.maxFreq(asg[0]));
}

TEST_F(SchedFixture, VarPAppPPairsHotThreadsWithCoolCores)
{
    Rng rng(5);
    // vortex burns 4.4 W dynamic, mcf 1.5 W.
    std::vector<const AppProfile *> apps = {
        &findApplication("vortex"), &findApplication("mcf")};
    const auto asg =
        scheduleThreads(SchedAlgo::VarPAppP, die_, apps, rng);
    EXPECT_LT(die_.staticPowerAt(asg[0], die_.maxLevel()),
              die_.staticPowerAt(asg[1], die_.maxLevel()));
}

TEST_F(SchedFixture, RandomPlacementVaries)
{
    Rng rng(6);
    const auto apps = workload(4);
    std::set<std::vector<std::size_t>> placements;
    for (int i = 0; i < 20; ++i)
        placements.insert(
            scheduleThreads(SchedAlgo::Random, die_, apps, rng));
    EXPECT_GT(placements.size(), 5u);
}

TEST_F(SchedFixture, FullOccupancyUsesAllCores)
{
    Rng rng(7);
    const auto asg = scheduleThreads(SchedAlgo::VarFAppIPC, die_,
                                     workload(20), rng);
    std::set<std::size_t> used(asg.begin(), asg.end());
    EXPECT_EQ(used.size(), 20u);
}

TEST(SchedNames, AreStable)
{
    EXPECT_STREQ(schedAlgoName(SchedAlgo::VarFAppIPC), "VarF&AppIPC");
    EXPECT_STREQ(schedAlgoName(SchedAlgo::VarP), "VarP");
}

} // namespace
} // namespace varsched
