#include "thermal/thermal.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace varsched
{

namespace
{

/**
 * Length of the shared boundary between two axis-aligned rectangles,
 * in normalised units; zero when they do not abut.
 */
double
sharedEdge(const Rect &a, const Rect &b)
{
    constexpr double kTouch = 1e-9;
    // Vertical shared edge (a's right against b's left or vice versa).
    if (std::abs((a.x + a.w) - b.x) < kTouch ||
        std::abs((b.x + b.w) - a.x) < kTouch) {
        const double lo = std::max(a.y, b.y);
        const double hi = std::min(a.y + a.h, b.y + b.h);
        return std::max(0.0, hi - lo);
    }
    // Horizontal shared edge.
    if (std::abs((a.y + a.h) - b.y) < kTouch ||
        std::abs((b.y + b.h) - a.y) < kTouch) {
        const double lo = std::max(a.x, b.x);
        const double hi = std::min(a.x + a.w, b.x + b.w);
        return std::max(0.0, hi - lo);
    }
    return 0.0;
}

} // namespace

ThermalModel::ThermalModel(const Floorplan &plan,
                           const ThermalParams &params)
    : numCores_(plan.numCores()), numL2_(plan.l2Blocks().size()),
      params_(params)
{
    // Node order: cores, L2 blocks, spreader, sink.
    const std::size_t numBlocks = numCores_ + numL2_;
    const std::size_t n = numBlocks + 2;
    const std::size_t spreader = numBlocks;
    const std::size_t sink = numBlocks + 1;

    std::vector<Rect> rects;
    rects.reserve(numBlocks);
    for (std::size_t c = 0; c < numCores_; ++c)
        rects.push_back(plan.coreRect(c));
    for (std::size_t l : plan.l2Blocks())
        rects.push_back(plan.blocks()[l].rect);

    conductance_ = Matrix(n, n);
    const double edgeM = plan.dieEdgeMm() * 1e-3;

    auto addConductance = [this](std::size_t i, std::size_t j, double g) {
        conductance_(i, i) += g;
        conductance_(j, j) += g;
        conductance_(i, j) -= g;
        conductance_(j, i) -= g;
    };

    // Lateral silicon conductances between abutting blocks.
    for (std::size_t i = 0; i < numBlocks; ++i) {
        for (std::size_t j = i + 1; j < numBlocks; ++j) {
            const double edge = sharedEdge(rects[i], rects[j]);
            if (edge <= 0.0)
                continue;
            const double dx = rects[i].cx() - rects[j].cx();
            const double dy = rects[i].cy() - rects[j].cy();
            const double dist = std::hypot(dx, dy) * edgeM;
            const double g = params_.siliconConductivity *
                params_.siliconThicknessM * (edge * edgeM) / dist;
            addConductance(i, j, g);
        }
    }

    // Vertical conductance of each block into the spreader.
    for (std::size_t i = 0; i < numBlocks; ++i) {
        const double areaM2 = rects[i].area() * edgeM * edgeM;
        addConductance(i, spreader, areaM2 / params_.verticalResistivity);
    }

    // Spreader -> sink -> ambient.
    addConductance(spreader, sink, 1.0 / params_.spreaderToSinkR);
    conductance_(sink, sink) += 1.0 / params_.sinkToAmbientR;

    // Thermal masses: silicon volume per block, lumped package parts.
    capacity_.assign(n, 0.0);
    for (std::size_t i = 0; i < numBlocks; ++i) {
        const double volM3 =
            rects[i].area() * edgeM * edgeM * params_.dieThicknessM;
        capacity_[i] = params_.siliconHeatCapacity * volM3;
    }
    capacity_[spreader] = params_.spreaderCapacity;
    capacity_[sink] = params_.sinkCapacity;

    // The conductance matrix is fixed for the life of the model, so
    // factor it once here; solve() then costs two triangular solves
    // per tick instead of a full CG iteration to 1e-12.
    const bool ok = cholesky(conductance_, factor_);
    assert(ok);
    (void)ok;

    // Sparsity structure for the transient stepper.
    neighbors_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i && conductance_(i, j) != 0.0)
                neighbors_[i].emplace_back(j, conductance_(i, j));
        }
    }
}

ThermalResult
ThermalModel::solve(const std::vector<double> &corePowerW,
                    const std::vector<double> &l2PowerW) const
{
    assert(corePowerW.size() == numCores_);
    assert(l2PowerW.size() == numL2_);

    const std::size_t numBlocks = numCores_ + numL2_;
    const std::size_t n = numBlocks + 2;

    // Right-hand side: block powers, plus the ambient injection at
    // the sink node (temperatures solved relative to absolute C).
    std::vector<double> rhs(n, 0.0);
    for (std::size_t c = 0; c < numCores_; ++c)
        rhs[c] = corePowerW[c];
    for (std::size_t l = 0; l < numL2_; ++l)
        rhs[numCores_ + l] = l2PowerW[l];
    rhs[n - 1] = params_.ambientC / params_.sinkToAmbientR;

    const std::vector<double> temps = choleskySolve(factor_, rhs);

#ifndef NDEBUG
    // First call: the direct solve must agree with the iterative CG
    // path it replaced.
    std::call_once(*selfCheck_, [&]() {
        const std::vector<double> cg = solveCG(conductance_, rhs, 1e-12);
        for (std::size_t i = 0; i < n; ++i)
            assert(std::abs(temps[i] - cg[i]) <
                   1e-9 * std::max(1.0, std::abs(cg[i])));
    });
#endif

    ThermalResult result;
    result.coreTempC.assign(temps.begin(),
                            temps.begin() + static_cast<long>(numCores_));
    result.l2TempC.assign(
        temps.begin() + static_cast<long>(numCores_),
        temps.begin() + static_cast<long>(numBlocks));
    result.spreaderC = temps[numBlocks];
    result.sinkC = temps[numBlocks + 1];
    return result;
}

void
ThermalModel::transientStep(ThermalResult &state,
                            const std::vector<double> &corePowerW,
                            const std::vector<double> &l2PowerW,
                            double dtMs) const
{
    assert(corePowerW.size() == numCores_);
    assert(l2PowerW.size() == numL2_);
    const std::size_t numBlocks = numCores_ + numL2_;
    const std::size_t n = numBlocks + 2;

    // Flatten the state vector.
    std::vector<double> temps(n, params_.ambientC);
    for (std::size_t c = 0; c < numCores_; ++c)
        temps[c] = state.coreTempC[c];
    for (std::size_t l = 0; l < numL2_; ++l)
        temps[numCores_ + l] = state.l2TempC[l];
    temps[numBlocks] = state.spreaderC;
    temps[numBlocks + 1] = state.sinkC;

    std::vector<double> power(n, 0.0);
    for (std::size_t c = 0; c < numCores_; ++c)
        power[c] = corePowerW[c];
    for (std::size_t l = 0; l < numL2_; ++l)
        power[numCores_ + l] = l2PowerW[l];
    power[n - 1] = params_.ambientC / params_.sinkToAmbientR;

    // Forward Euler, sub-stepped to half the smallest block time
    // constant for stability.
    double tauMin = 1e300;
    for (std::size_t i = 0; i < n; ++i)
        tauMin = std::min(tauMin, capacity_[i] / conductance_(i, i));
    const double maxStepS = 0.5 * tauMin;
    const double totalS = dtMs * 1e-3;
    const auto steps = static_cast<std::size_t>(
        std::ceil(totalS / maxStepS));
    const double h = totalS / static_cast<double>(steps);

    std::vector<double> next(n);
    for (std::size_t s = 0; s < steps; ++s) {
        for (std::size_t i = 0; i < n; ++i) {
            double flow = power[i] - conductance_(i, i) * temps[i];
            for (const auto &[j, g] : neighbors_[i])
                flow -= g * temps[j];
            next[i] = temps[i] + h * flow / capacity_[i];
        }
        temps.swap(next);
    }

    for (std::size_t c = 0; c < numCores_; ++c)
        state.coreTempC[c] = temps[c];
    for (std::size_t l = 0; l < numL2_; ++l)
        state.l2TempC[l] = temps[numCores_ + l];
    state.spreaderC = temps[numBlocks];
    state.sinkC = temps[numBlocks + 1];
}

} // namespace varsched
