/**
 * @file
 * Section 8 extension: parallel (barrier-synchronised) applications.
 * A gang of identical workers advances at its slowest worker's pace,
 * so the sum-throughput objective of LinOpt misallocates power. This
 * bench compares, on real-die snapshots:
 *
 *  - Foxton* (uniform reduction — accidentally not terrible for
 *    gangs, since it keeps workers roughly symmetric),
 *  - LinOpt (sum objective — starves workers on slow cores), and
 *  - LinOptMaxMin (the max-min LP of core/parallel.hh),
 *
 * on the barrier speed metric (slowest worker's MIPS).
 */

#include <cstdio>

#include "bench/common.hh"
#include "chip/sensors.hh"
#include "core/linopt.hh"
#include "core/parallel.hh"
#include "core/sched.hh"
#include "core/system.hh"
#include "solver/stats.hh"

using namespace varsched;

int
main()
{
    bench::PerfRecorder perf("bench_ext_parallel");
    bench::banner("Extension: barrier-synchronised parallel gangs "
                  "(Section 8)",
                  "not a paper figure — the paper lists this as "
                  "planned work");

    const std::size_t trials = envSize("VARSCHED_TRIALS", 10);
    std::printf("[%zu dies; 16-worker gangs; budget 60 W]\n\n",
                trials);

    DieParams params;
    std::printf("%-12s | %-42s\n", "",
                "barrier speed (slowest worker MIPS)");
    std::printf("%-12s | %10s %10s %13s %8s\n", "gang app", "Foxton*",
                "LinOpt", "LinOptMaxMin", "gain");

    for (const auto *appName : {"swim", "gzip", "vortex"}) {
        Summary fox, lin, maxmin;
        Rng seeder(404);
        for (std::size_t trial = 0; trial < trials; ++trial) {
            const Die die(params, seeder.next());
            ChipEvaluator evaluator(die);
            Rng rng = seeder.fork(trial);

            const std::size_t workers = 16;
            std::vector<const AppProfile *> gang(
                workers, &findApplication(appName));
            auto asg = scheduleThreads(SchedAlgo::VarF, die, gang, rng);
            std::vector<CoreWork> work(die.numCores());
            for (std::size_t t = 0; t < workers; ++t)
                work[asg[t]].app = gang[t];
            std::vector<int> top(die.numCores(),
                                 static_cast<int>(die.maxLevel()));
            const auto cond = evaluator.evaluate(work, top);
            const auto snap = buildSnapshot(evaluator, work, cond,
                                            60.0, 7.5, nullptr);

            FoxtonStarManager pmFox;
            LinOptManager pmLin;
            LinOptMaxMinManager pmMaxMin;
            fox.add(barrierSpeed(snap, pmFox.selectLevels(snap)));
            lin.add(barrierSpeed(snap, pmLin.selectLevels(snap)));
            maxmin.add(
                barrierSpeed(snap, pmMaxMin.selectLevels(snap)));
        }
        std::printf("%-12s | %10.0f %10.0f %13.0f %7.1f%%\n", appName,
                    fox.mean(), lin.mean(), maxmin.mean(),
                    100.0 * (maxmin.mean() / lin.mean() - 1.0));
    }
    std::printf("\n(gain = LinOptMaxMin over sum-objective LinOpt on "
                "the metric that matters for gangs)\n\n");

    // Time-domain cross-check: run the full system (phases, sensors,
    // 10 ms DVFS, thermal settling) with each manager and score the
    // slowest thread's sustained pace.
    std::printf("time-domain (system simulator, 16x swim, 60 W, "
                "200 ms):\n");
    std::printf("  %-14s %16s %12s\n", "manager",
                "min-thread MIPS", "sum MIPS");
    DieParams dieParams;
    const Die die(dieParams, 31415);
    std::vector<const AppProfile *> gang(
        16, &findApplication("swim"));
    for (PmKind pm : {PmKind::FoxtonStar, PmKind::LinOpt,
                      PmKind::LinOptMaxMin}) {
        SystemConfig config;
        config.sched = SchedAlgo::VarF;
        config.pm = pm;
        config.ptargetW = 60.0;
        config.durationMs = 200.0;
        config.seed = 7;
        SystemSimulator sim(die, gang, config);
        const auto r = sim.run();
        std::printf("  %-14s %16.0f %12.0f\n", pmKindName(pm),
                    r.avgMinThreadMips, r.avgMips);
    }
    return 0;
}
