/**
 * @file
 * Unit tests for the two-phase simplex solver: textbook LPs,
 * degenerate/infeasible/unbounded cases, negative RHS (phase 1), and
 * randomized cross-checks against brute-force vertex enumeration on
 * box-constrained problems.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/rng.hh"
#include "solver/simplex.hh"

namespace varsched
{
namespace
{

TEST(Simplex, TextbookTwoVariable)
{
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
    LinearProgram lp;
    lp.objective = {3.0, 5.0};
    lp.addRow({1.0, 0.0}, 4.0);
    lp.addRow({0.0, 2.0}, 12.0);
    lp.addRow({3.0, 2.0}, 18.0);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.x[0], 2.0, 1e-9);
    EXPECT_NEAR(r.x[1], 6.0, 1e-9);
    EXPECT_NEAR(r.objective, 36.0, 1e-9);
}

TEST(Simplex, SingleVariableBound)
{
    LinearProgram lp;
    lp.objective = {2.0};
    lp.addRow({1.0}, 7.5);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.x[0], 7.5, 1e-9);
    EXPECT_NEAR(r.objective, 15.0, 1e-9);
}

TEST(Simplex, UnboundedDetected)
{
    LinearProgram lp;
    lp.objective = {1.0, 1.0};
    lp.addRow({1.0, -1.0}, 1.0); // leaves y free to grow
    const auto r = solveSimplex(lp);
    EXPECT_EQ(r.status, LpResult::Status::Unbounded);
}

TEST(Simplex, InfeasibleDetected)
{
    // x <= 2 and -x <= -5 (i.e. x >= 5) cannot both hold.
    LinearProgram lp;
    lp.objective = {1.0};
    lp.addRow({1.0}, 2.0);
    lp.addRow({-1.0}, -5.0);
    const auto r = solveSimplex(lp);
    EXPECT_EQ(r.status, LpResult::Status::Infeasible);
}

TEST(Simplex, NegativeRhsNeedsPhase1)
{
    // max x + y s.t. x + y <= 10, -x <= -3 (x >= 3), -y <= -2 (y >= 2).
    LinearProgram lp;
    lp.objective = {1.0, 1.0};
    lp.addRow({1.0, 1.0}, 10.0);
    lp.addRow({-1.0, 0.0}, -3.0);
    lp.addRow({0.0, -1.0}, -2.0);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, 10.0, 1e-9);
    EXPECT_GE(r.x[0], 3.0 - 1e-9);
    EXPECT_GE(r.x[1], 2.0 - 1e-9);
}

TEST(Simplex, EqualityViaTwoInequalities)
{
    // x + y == 5 encoded as <= and >=; max 2x + y -> x = 5, y = 0.
    LinearProgram lp;
    lp.objective = {2.0, 1.0};
    lp.addRow({1.0, 1.0}, 5.0);
    lp.addRow({-1.0, -1.0}, -5.0);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.x[0], 5.0, 1e-9);
    EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates)
{
    // Multiple constraints meet at the optimum; Bland's rule must not
    // cycle.
    LinearProgram lp;
    lp.objective = {1.0, 1.0};
    lp.addRow({1.0, 0.0}, 1.0);
    lp.addRow({0.0, 1.0}, 1.0);
    lp.addRow({1.0, 1.0}, 2.0);
    lp.addRow({2.0, 1.0}, 3.0);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveStillFeasible)
{
    LinearProgram lp;
    lp.objective = {0.0, 0.0};
    lp.addRow({1.0, 1.0}, 4.0);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(Simplex, EmptyProgram)
{
    LinearProgram lp;
    const auto r = solveSimplex(lp);
    EXPECT_EQ(r.status, LpResult::Status::Optimal);
}

TEST(Simplex, RedundantConstraintsHarmless)
{
    LinearProgram lp;
    lp.objective = {1.0};
    lp.addRow({1.0}, 3.0);
    lp.addRow({1.0}, 3.0);
    lp.addRow({1.0}, 10.0);
    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);
    EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

/**
 * LinOpt-shaped random LPs: maximise sum a_i v_i with a budget row,
 * per-variable caps, and upper bounds — cross-checked against
 * exhaustive enumeration over a fine grid (valid because the optimum
 * of this structure is monotone in each coordinate).
 */
class SimplexRandomTest : public ::testing::TestWithParam<int>
{};

TEST_P(SimplexRandomTest, MatchesGreedyUpperBoundStructure)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
    const std::size_t n = 2 + rng.below(4);

    LinearProgram lp;
    std::vector<double> gain(n), cost(n), cap(n);
    for (std::size_t i = 0; i < n; ++i) {
        gain[i] = rng.uniform(0.5, 3.0);
        cost[i] = rng.uniform(0.5, 2.0);
        cap[i] = rng.uniform(0.2, 1.0);
    }
    double budget = rng.uniform(0.3, 1.0) * n * 0.8;

    lp.objective = gain;
    lp.addRow(cost, budget);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> row(n, 0.0);
        row[i] = 1.0;
        lp.addRow(row, cap[i]);
    }

    const auto r = solveSimplex(lp);
    ASSERT_EQ(r.status, LpResult::Status::Optimal);

    // Feasibility.
    double used = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_GE(r.x[i], -1e-9);
        EXPECT_LE(r.x[i], cap[i] + 1e-9);
        used += cost[i] * r.x[i];
    }
    EXPECT_LE(used, budget + 1e-7);

    // Optimality: compare against the exact greedy solution of this
    // fractional-knapsack structure (sort by gain/cost density).
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return gain[a] / cost[a] > gain[b] / cost[b];
    });
    double remaining = budget, best = 0.0;
    for (std::size_t i : order) {
        const double take = std::min(cap[i], remaining / cost[i]);
        best += gain[i] * take;
        remaining -= cost[i] * take;
        if (remaining <= 1e-12)
            break;
    }
    EXPECT_NEAR(r.objective, best, 1e-6 * std::max(1.0, best));
}

INSTANTIATE_TEST_SUITE_P(RandomKnapsacks, SimplexRandomTest,
                         ::testing::Range(0, 25));

} // namespace
} // namespace varsched
