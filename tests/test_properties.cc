/**
 * @file
 * Property-based sweeps across seeds and parameters: invariants that
 * must hold for *every* die, workload, and operating point, checked
 * over parameterised ranges — plus reference-model cross-checks (FFT
 * vs naive DFT, cache vs a map-based LRU oracle).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <list>
#include <map>
#include <numbers>

#include "chip/sensors.hh"
#include "cmpsim/cache.hh"
#include "core/linopt.hh"
#include "core/pmalgo.hh"
#include "core/sched.hh"
#include "solver/fft.hh"
#include "solver/simplex.hh"

namespace varsched
{
namespace
{

DieParams
testParams()
{
    DieParams p;
    p.variation.gridSize = 48;
    return p;
}

// ---------------------------------------------------------------
// FFT vs naive DFT reference.
// ---------------------------------------------------------------

class FftReferenceTest : public ::testing::TestWithParam<int>
{};

TEST_P(FftReferenceTest, MatchesNaiveDft)
{
    const std::size_t n = 32;
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
    std::vector<std::complex<double>> x(n);
    for (auto &v : x)
        v = {rng.normal(), rng.normal()};

    std::vector<std::complex<double>> reference(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> sum{0.0, 0.0};
        for (std::size_t t = 0; t < n; ++t) {
            const double ang = -2.0 * std::numbers::pi *
                static_cast<double>(k * t) / static_cast<double>(n);
            sum += x[t] * std::complex<double>(std::cos(ang),
                                               std::sin(ang));
        }
        reference[k] = sum;
    }

    fft(x, false);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(x[k].real(), reference[k].real(), 1e-9);
        EXPECT_NEAR(x[k].imag(), reference[k].imag(), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftReferenceTest,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------
// Cache vs a map-based LRU oracle.
// ---------------------------------------------------------------

/** Straightforward (slow) LRU cache oracle. */
class LruOracle
{
  public:
    explicit LruOracle(const CacheConfig &config)
        : config_(config),
          numSets_(config.sizeBytes /
                   (config.lineBytes * config.associativity))
    {
        sets_.resize(numSets_);
    }

    bool
    access(std::uint64_t addr)
    {
        const std::uint64_t line = addr / config_.lineBytes;
        auto &set = sets_[line % numSets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        set.push_front(line);
        if (set.size() > config_.associativity)
            set.pop_back();
        return false;
    }

  private:
    CacheConfig config_;
    std::size_t numSets_;
    std::vector<std::list<std::uint64_t>> sets_;
};

class CacheOracleTest : public ::testing::TestWithParam<int>
{};

TEST_P(CacheOracleTest, AgreesWithOracleOnRandomStream)
{
    CacheConfig config{2048, 4, 64}; // small cache stresses eviction
    Cache cache(config);
    LruOracle oracle(config);
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    for (int i = 0; i < 20000; ++i) {
        // 16 KB footprint over a 2 KB cache: plenty of misses.
        const std::uint64_t addr = rng.below(16384);
        EXPECT_EQ(cache.access(addr), oracle.access(addr))
            << "at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheOracleTest,
                         ::testing::Range(0, 5));

// ---------------------------------------------------------------
// Die invariants across manufacturing seeds.
// ---------------------------------------------------------------

class DieInvariantTest : public ::testing::TestWithParam<int>
{};

TEST_P(DieInvariantTest, TablesMonotoneAndFinite)
{
    const Die die(testParams(),
                  static_cast<std::uint64_t>(GetParam()) * 997 + 3);
    for (std::size_t c = 0; c < die.numCores(); ++c) {
        for (std::size_t l = 0; l < die.numLevels(); ++l) {
            EXPECT_TRUE(std::isfinite(die.freqAt(c, l)));
            EXPECT_GT(die.freqAt(c, l), 1.0e8);
            EXPECT_LT(die.freqAt(c, l), 6.0e9);
            EXPECT_GT(die.staticPowerAt(c, l), 0.0);
            EXPECT_LT(die.staticPowerAt(c, l), 50.0);
            if (l > 0) {
                EXPECT_GE(die.freqAt(c, l), die.freqAt(c, l - 1));
                EXPECT_GT(die.staticPowerAt(c, l),
                          die.staticPowerAt(c, l - 1));
            }
        }
        EXPECT_LE(die.uniformFreq(), die.maxFreq(c));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DieInvariantTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------
// Variation grows with sigma/mu (the Fig 5 property).
// ---------------------------------------------------------------

TEST(SigmaSweepProperty, FrequencySpreadGrowsWithSigma)
{
    double prevRatio = 1.0;
    for (double sigma : {0.03, 0.06, 0.09, 0.12}) {
        DieParams p = testParams();
        p.variation.vthSigmaOverMu = sigma;
        double sum = 0.0;
        const int dies = 6;
        Rng seeder(42);
        for (int d = 0; d < dies; ++d) {
            const Die die(p, seeder.next());
            double lo = 1e300, hi = 0.0;
            for (std::size_t c = 0; c < die.numCores(); ++c) {
                lo = std::min(lo, die.maxFreq(c));
                hi = std::max(hi, die.maxFreq(c));
            }
            sum += hi / lo;
        }
        const double ratio = sum / dies;
        EXPECT_GT(ratio, prevRatio) << "sigma " << sigma;
        prevRatio = ratio;
    }
}

// ---------------------------------------------------------------
// Power-manager feasibility across seeds and budgets.
// ---------------------------------------------------------------

struct PmCase
{
    int seed;
    double ptarget20;
};

class PmFeasibilityTest : public ::testing::TestWithParam<PmCase>
{};

TEST_P(PmFeasibilityTest, ManagersMeetReachableBudgets)
{
    const auto param = GetParam();
    const Die die(testParams(),
                  static_cast<std::uint64_t>(param.seed) * 31 + 11);
    ChipEvaluator evaluator(die);
    Rng rng(static_cast<std::uint64_t>(param.seed));
    const std::size_t threads = 12;
    auto apps = randomWorkload(threads, rng);
    auto asg = scheduleThreads(SchedAlgo::VarFAppIPC, die, apps, rng);
    std::vector<CoreWork> work(die.numCores());
    for (std::size_t t = 0; t < threads; ++t)
        work[asg[t]].app = apps[t];
    std::vector<int> top(die.numCores(),
                         static_cast<int>(die.maxLevel()));
    const auto cond = evaluator.evaluate(work, top);
    const double ptarget =
        param.ptarget20 * static_cast<double>(threads) / 20.0;
    const auto snap = buildSnapshot(
        evaluator, work, cond, ptarget,
        2.0 * ptarget / static_cast<double>(threads), nullptr);

    const std::vector<int> floor(snap.cores.size(), 0);
    const bool reachable = snap.feasible(floor);

    FoxtonStarManager fox;
    LinOptManager lin;
    const auto lf = fox.selectLevels(snap);
    const auto ll = lin.selectLevels(snap);
    if (reachable) {
        EXPECT_TRUE(snap.feasible(lf)) << "Foxton*";
        EXPECT_TRUE(snap.feasible(ll)) << "LinOpt";
        // LinOpt should never be much worse than the baseline.
        EXPECT_GE(snap.mipsAt(ll), snap.mipsAt(lf) * 0.97);
    } else {
        // Unreachable budget: both must bottom out.
        EXPECT_EQ(lf, floor);
        EXPECT_EQ(ll, floor);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBudgets, PmFeasibilityTest,
    ::testing::Values(PmCase{1, 50.0}, PmCase{2, 50.0},
                      PmCase{3, 75.0}, PmCase{4, 75.0},
                      PmCase{5, 100.0}, PmCase{6, 100.0},
                      PmCase{7, 30.0}, PmCase{8, 150.0}));

// ---------------------------------------------------------------
// Snapshot monotonicity: raising any core's level raises its power
// and its (constant-IPC) throughput estimate.
// ---------------------------------------------------------------

TEST(SnapshotProperty, LevelMonotonicity)
{
    const Die die(testParams(), 404);
    ChipEvaluator evaluator(die);
    Rng rng(6);
    const std::size_t threads = 8;
    auto apps = randomWorkload(threads, rng);
    auto asg = scheduleThreads(SchedAlgo::Random, die, apps, rng);
    std::vector<CoreWork> work(die.numCores());
    for (std::size_t t = 0; t < threads; ++t)
        work[asg[t]].app = apps[t];
    std::vector<int> top(die.numCores(),
                         static_cast<int>(die.maxLevel()));
    const auto cond = evaluator.evaluate(work, top);
    const auto snap =
        buildSnapshot(evaluator, work, cond, 75.0, 10.0, nullptr);

    for (const auto &core : snap.cores) {
        for (std::size_t l = 1; l < snap.voltage.size(); ++l) {
            EXPECT_GT(core.powerW[l], core.powerW[l - 1]);
            EXPECT_GE(core.freqHz[l], core.freqHz[l - 1]);
            // IPC falls (weakly) with frequency for every app.
            EXPECT_LE(core.ipc[l], core.ipc[l - 1] + 1e-12);
        }
    }
}

// ---------------------------------------------------------------
// Simplex optimality spot-check: no random feasible point beats the
// reported optimum.
// ---------------------------------------------------------------

class SimplexOptimalityTest : public ::testing::TestWithParam<int>
{};

TEST_P(SimplexOptimalityTest, NoSampledPointBeatsOptimum)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 19);
    const std::size_t n = 3 + rng.below(3);
    LinearProgram lp;
    lp.objective.resize(n);
    for (auto &c : lp.objective)
        c = rng.uniform(-1.0, 3.0);
    const std::size_t rows = 2 + rng.below(3);
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> row(n);
        for (auto &v : row)
            v = rng.uniform(0.1, 2.0); // positive rows: bounded
        lp.addRow(row, rng.uniform(1.0, 5.0));
    }
    const auto result = solveSimplex(lp);
    ASSERT_EQ(result.status, LpResult::Status::Optimal);

    for (int trial = 0; trial < 300; ++trial) {
        std::vector<double> x(n);
        for (auto &v : x)
            v = rng.uniform(0.0, 3.0);
        bool feasible = true;
        for (std::size_t r = 0; r < rows && feasible; ++r) {
            double lhs = 0.0;
            for (std::size_t j = 0; j < n; ++j)
                lhs += lp.rows[r][j] * x[j];
            feasible = lhs <= lp.rhs[r];
        }
        if (!feasible)
            continue;
        double obj = 0.0;
        for (std::size_t j = 0; j < n; ++j)
            obj += lp.objective[j] * x[j];
        EXPECT_LE(obj, result.objective + 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexOptimalityTest,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------
// Physics monotonicity across operating points.
// ---------------------------------------------------------------

TEST(PhysicsProperty, ChipPowerMonotoneInLevels)
{
    const Die die(testParams(), 777);
    ChipEvaluator evaluator(die);
    std::vector<CoreWork> work(die.numCores());
    const auto &apps = specApplications();
    for (std::size_t c = 0; c < die.numCores(); ++c)
        work[c].app = &apps[c % apps.size()];

    double prev = 0.0;
    for (int level = 0; level <= static_cast<int>(die.maxLevel());
         ++level) {
        std::vector<int> levels(die.numCores(), level);
        const auto cond = evaluator.evaluate(work, levels);
        EXPECT_GT(cond.totalPowerW, prev);
        prev = cond.totalPowerW;
    }
}

TEST(PhysicsProperty, MoreThreadsMorePowerAndThroughput)
{
    const Die die(testParams(), 888);
    ChipEvaluator evaluator(die);
    Rng rng(4);
    double prevPower = 0.0, prevMips = 0.0;
    for (std::size_t threads : {2u, 6u, 12u, 20u}) {
        Rng wrng(9);
        auto apps = randomWorkload(threads, wrng);
        auto asg = scheduleThreads(SchedAlgo::VarF, die, apps, rng);
        std::vector<CoreWork> work(die.numCores());
        for (std::size_t t = 0; t < threads; ++t)
            work[asg[t]].app = apps[t];
        std::vector<int> top(die.numCores(),
                             static_cast<int>(die.maxLevel()));
        const auto cond = evaluator.evaluate(work, top);
        EXPECT_GT(cond.totalPowerW, prevPower);
        EXPECT_GT(cond.totalMips, prevMips);
        prevPower = cond.totalPowerW;
        prevMips = cond.totalMips;
    }
}

} // namespace
} // namespace varsched
