/**
 * @file
 * Minimal dense linear algebra: a row-major matrix, Cholesky
 * factorisation (used for exact Gaussian-field generation on small
 * grids), triangular solves, and a least-squares line fit (used by
 * LinOpt's power linearisation, Fig 1 of the paper).
 */

#ifndef VARSCHED_SOLVER_MATRIX_HH
#define VARSCHED_SOLVER_MATRIX_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace varsched
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix, zero-initialised. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    double &operator()(std::size_t r, std::size_t c)
    { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const
    { return data_[r * cols_ + c]; }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /**
     * Raw pointer to row @p r (contiguous, cols() doubles). The
     * register-blocked kernels below walk rows through these instead
     * of per-element operator() so the inner loops are contiguous
     * loads the compiler can keep in registers.
     */
    double *row(std::size_t r) { return data_.data() + r * cols_; }
    const double *row(std::size_t r) const
    { return data_.data() + r * cols_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Cholesky factorisation A = L·Lᵀ of a symmetric positive-definite
 * matrix; only the lower triangle of @p a is read.
 *
 * @param a Symmetric positive-definite input.
 * @param l Output lower-triangular factor (resized).
 * @retval true on success; false if the matrix is not positive
 *         definite (a tiny diagonal jitter is attempted first).
 */
bool cholesky(const Matrix &a, Matrix &l);

/** y = L·x for lower-triangular L. */
std::vector<double> lowerMultiply(const Matrix &l,
                                  const std::vector<double> &x);

/**
 * Solve A·x = b given the Cholesky factor L of A (A = L·Lᵀ) by a
 * forward and a backward triangular substitution — O(n²) per
 * right-hand side versus O(n²) *per iteration* for CG, which is why
 * the thermal models factor once at construction and call this every
 * tick.
 */
std::vector<double> choleskySolve(const Matrix &l,
                                  const std::vector<double> &b);

/**
 * Least-squares fit of y ≈ b·x + c.
 *
 * @return {b, c}. With fewer than two points, returns {0, y0-or-0}.
 */
std::pair<double, double> fitLine(const std::vector<double> &x,
                                  const std::vector<double> &y);

/**
 * Solve the symmetric positive-definite system A·x = b by conjugate
 * gradients (used by the thermal solver on larger networks).
 *
 * @param a System matrix (assumed SPD).
 * @param b Right-hand side.
 * @param tol Relative residual tolerance.
 * @param maxIter Iteration cap (0 means 10·n).
 */
std::vector<double> solveCG(const Matrix &a, const std::vector<double> &b,
                            double tol = 1e-10, std::size_t maxIter = 0);

} // namespace varsched

#endif // VARSCHED_SOLVER_MATRIX_HH
