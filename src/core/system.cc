#include "core/system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/exhaustive.hh"
#include "core/linopt.hh"
#include "core/metrics.hh"
#include "core/parallel.hh"
#include "core/sann.hh"
#include "reliability/wearout.hh"

namespace varsched
{

namespace
{

/** Require a positive timing/budget parameter. */
void
requirePositive(double value, const char *name)
{
    if (!(value > 0.0)) {
        throw std::invalid_argument(
            std::string("SystemConfig::") + name +
            " must be > 0 (got " + std::to_string(value) + ")");
    }
}

/** Require @p intervalMs to be a whole multiple of the tick. */
void
requireMultipleOfTick(double intervalMs, double tickMs,
                      const char *name)
{
    const double ratio = intervalMs / tickMs;
    if (std::abs(ratio - std::round(ratio)) > 1e-6 * ratio) {
        throw std::invalid_argument(
            std::string("SystemConfig::") + name + " (" +
            std::to_string(intervalMs) +
            " ms) must be a whole multiple of tickMs (" +
            std::to_string(tickMs) + " ms)");
    }
}

} // namespace

void
validateSystemConfig(const SystemConfig &config, std::size_t numCores)
{
    requirePositive(config.tickMs, "tickMs");
    requirePositive(config.durationMs, "durationMs");
    requirePositive(config.osIntervalMs, "osIntervalMs");
    requirePositive(config.dvfsIntervalMs, "dvfsIntervalMs");
    requireMultipleOfTick(config.dvfsIntervalMs, config.tickMs,
                          "dvfsIntervalMs");
    requireMultipleOfTick(config.osIntervalMs, config.tickMs,
                          "osIntervalMs");
    if (config.pm != PmKind::None)
        requirePositive(config.ptargetW, "ptargetW");
    for (const SensorFaultSpec &s : config.faults.sensorFaults) {
        if (s.coreId >= numCores) {
            throw std::invalid_argument(
                "FaultSpec sensor fault names core " +
                std::to_string(s.coreId) + " but the die has only " +
                std::to_string(numCores) + " cores");
        }
    }
    for (const CoreFailureSpec &f : config.faults.coreFailures) {
        if (f.coreId >= numCores) {
            throw std::invalid_argument(
                "FaultSpec core failure names core " +
                std::to_string(f.coreId) + " but the die has only " +
                std::to_string(numCores) + " cores");
        }
    }
}

const char *
pmKindName(PmKind kind)
{
    switch (kind) {
      case PmKind::None: return "None";
      case PmKind::FoxtonStar: return "Foxton*";
      case PmKind::LinOpt: return "LinOpt";
      case PmKind::SAnn: return "SAnn";
      case PmKind::Exhaustive: return "Exhaustive";
      case PmKind::LinOptMaxMin: return "LinOptMaxMin";
      default: return "?";
    }
}

std::unique_ptr<PowerManager>
makePowerManager(PmKind kind, std::size_t sannEvals, std::uint64_t seed,
                 PmObjective objective)
{
    switch (kind) {
      case PmKind::None:
        return std::make_unique<MaxLevelManager>();
      case PmKind::FoxtonStar:
        return std::make_unique<FoxtonStarManager>();
      case PmKind::LinOpt: {
        LinOptConfig config;
        config.objective = objective;
        return std::make_unique<LinOptManager>(config);
      }
      case PmKind::SAnn: {
        SAnnConfig config;
        config.maxEvals = sannEvals;
        config.seed = seed;
        config.objective = objective;
        return std::make_unique<SAnnManager>(config);
      }
      case PmKind::Exhaustive:
        return std::make_unique<ExhaustiveManager>(20'000'000,
                                                   objective);
      case PmKind::LinOptMaxMin:
        return std::make_unique<LinOptMaxMinManager>();
    }
    return nullptr;
}

SystemSimulator::SystemSimulator(const Die &die,
                                 std::vector<const AppProfile *> apps,
                                 const SystemConfig &config)
    : die_(die), apps_(std::move(apps)), config_(config),
      evaluator_(die)
{
    validateSystemConfig(config_, die_.numCores());
    if (apps_.empty())
        throw std::invalid_argument("SystemSimulator needs >= 1 app");
    if (apps_.size() > die_.numCores()) {
        throw std::invalid_argument(
            "SystemSimulator: " + std::to_string(apps_.size()) +
            " threads exceed the die's " +
            std::to_string(die_.numCores()) + " cores");
    }
    manager_ = makePowerManager(config_.pm, config_.sannEvals,
                                config_.seed ^ 0x5A5A,
                                config_.pmObjective);
    if (config_.guardedPm && config_.pm != PmKind::None) {
        auto guarded = std::make_unique<GuardedPowerManager>(
            std::move(manager_), config_.guard);
        guard_ = guarded.get();
        manager_ = std::move(guarded);
    }
}

SystemResult
SystemSimulator::run()
{
    const std::size_t numCores = die_.numCores();
    const std::size_t numThreads = apps_.size();

    Rng rng(config_.seed);
    Rng noiseRng = rng.fork(0xDEAD);
    // Seeded independently of the main stream so enabling a fault
    // schedule does not perturb placement/phase/noise draws.
    FaultInjector injector(config_.faults,
                           config_.seed * 0x9e3779b97f4a7c15ull ^
                               0xFA0175EEDull);

    const double pcoreMax = config_.pcoreMaxW > 0.0
        ? config_.pcoreMaxW
        : 2.0 * config_.ptargetW / static_cast<double>(numThreads);

    // Per-thread phase sequencers.
    std::vector<PhaseSequencer> phases;
    phases.reserve(numThreads);
    for (std::size_t t = 0; t < numThreads; ++t)
        phases.emplace_back(*apps_[t], rng.fork(100 + t));

    const double uniFreq =
        config_.uniformFrequency ? die_.uniformFreq() : 0.0;

    std::vector<std::size_t> assignment; // thread -> core (or kNoCore)
    std::vector<CoreWork> work(numCores);
    std::vector<int> coreLevels(numCores,
                                static_cast<int>(die_.maxLevel()));
    std::vector<bool> coreOk(numCores, true);
    ChipCondition cond;
    bool haveCondition = false;

    const auto now = []() { return std::chrono::steady_clock::now(); };
    using Sec = std::chrono::duration<double>;
    double physicsSec = 0.0, pmSec = 0.0, schedSec = 0.0;

    // Steady-state condition cache: `steady` holds the pristine
    // solution of the last settled (work, levels) pair. When the
    // inputs are unchanged since that solve, the solution is reused
    // verbatim — bit-identical to re-evaluating, since evaluate() is
    // a pure function of its inputs. Misses warm-start the fixed
    // point from the previous solution when configured.
    ChipCondition steady;
    std::vector<CoreWork> cachedWork;
    std::vector<int> cachedLevels;
    bool cacheValid = false;

    const auto sameWork = [](const std::vector<CoreWork> &a,
                             const std::vector<CoreWork> &b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i].app != b[i].app || a[i].cpiScale != b[i].cpiScale ||
                a[i].missScale != b[i].missScale ||
                a[i].activityScale != b[i].activityScale)
                return false;
        }
        return true;
    };

    const auto settleSteady = [&]() {
        if (cacheValid && coreLevels == cachedLevels &&
            sameWork(work, cachedWork)) {
            cond = steady;
            return;
        }
        evaluator_.evaluateInto(
            steady, work, coreLevels, uniFreq,
            config_.warmStartThermal && cacheValid ? &steady : nullptr);
        cachedWork = work;
        cachedLevels = coreLevels;
        cacheValid = true;
        cond = steady;
    };

    auto refreshWork = [&]() {
        for (auto &w : work)
            w = CoreWork{};
        for (std::size_t t = 0; t < numThreads; ++t) {
            // Parked threads, and threads whose core died since the
            // last OS interval, make no progress.
            if (assignment[t] == kNoCore || !coreOk[assignment[t]])
                continue;
            const Phase &ph = phases[t].current();
            CoreWork w;
            w.app = apps_[t];
            w.cpiScale = ph.cpiScale;
            w.missScale = ph.missScale;
            w.activityScale = ph.activityScale;
            work[assignment[t]] = w;
        }
    };

    SystemResult result;
    double sumMips = 0.0, sumWeighted = 0.0, sumProgress = 0.0,
           sumPower = 0.0, sumMinThread = 0.0;
    double sumFreq = 0.0, sumDev = 0.0;
    std::size_t ticks = 0;
    long transitionSteps = 0;
    double transitionLostMipsMs = 0.0;

    const WearoutModel wearoutModel;
    WearoutTracker wearout(wearoutModel, numCores);
    std::vector<double> coreVdd(numCores, 0.0);

    const auto totalTicks = static_cast<std::size_t>(
        std::llround(config_.durationMs / config_.tickMs));
    const auto osPeriod = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(config_.osIntervalMs / config_.tickMs)));
    const auto dvfsPeriod = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(config_.dvfsIntervalMs / config_.tickMs)));

    result.powerTrace.reserve(totalTicks);

    // Guard-tier bookkeeping (recovery-latency metric).
    int prevTier = 0;
    double degradeStartMs = 0.0;
    double totalRecoveryMs = 0.0;
    std::size_t recoveryEpisodes = 0;

    for (std::size_t tick = 0; tick < totalTicks; ++tick) {
        const double nowMs = static_cast<double>(tick) * config_.tickMs;
        injector.advanceTo(nowMs);
        for (std::size_t c = 0; c < numCores; ++c) {
            if (coreOk[c] && injector.coreFailed(c))
                coreOk[c] = false;
        }

        // OS scheduling interval: revisit thread placement. The
        // ThermalAware extension consumes the live temperature map
        // (activity migration); cold start falls back to Random.
        // Threads on cores that failed since the last interval are
        // remapped here (failed cores are masked out of the pools).
        if (tick % osPeriod == 0) {
            const auto t0 = now();
            if (config_.sched == SchedAlgo::ThermalAware &&
                haveCondition) {
                assignment = scheduleThreadsThermal(
                    die_, apps_, cond.coreTempC, rng, &coreOk);
            } else {
                assignment = scheduleThreads(config_.sched, die_,
                                             apps_, rng, &coreOk);
            }
            schedSec += Sec(now() - t0).count();
        }
        refreshWork();
        if (!haveCondition) {
            // First tick: settle once before the power manager reads
            // its sensors.
            const auto t0 = now();
            if (config_.transientThermal) {
                cond = evaluator_.evaluate(work, coreLevels, uniFreq);
            } else {
                settleSteady();
            }
            haveCondition = true;
            physicsSec += Sec(now() - t0).count();
        }

        // DVFS interval: re-run the power manager on fresh sensors
        // (read through the fault injector), then push the chosen
        // levels through the — possibly faulty — actuators.
        if (config_.pm != PmKind::None && tick % dvfsPeriod == 0) {
            const auto t0 = now();
            const ChipSnapshot snap = buildSnapshot(
                evaluator_, work, cond, config_.ptargetW, pcoreMax,
                config_.sensorNoise ? &noiseRng : nullptr, &injector);
            const std::vector<int> active =
                manager_->selectLevels(snap);
            for (std::size_t i = 0; i < snap.cores.size(); ++i) {
                const std::size_t core = snap.cores[i].coreId;
                const int applied = injector.actuate(
                    core, coreLevels[core], active[i]);
                transitionSteps +=
                    std::abs(applied - coreLevels[core]);
                coreLevels[core] = applied;
            }
            pmSec += Sec(now() - t0).count();
        }

        // Physics + metrics for this tick.
        {
            const auto t0 = now();
            if (config_.transientThermal) {
                cond = evaluator_.evaluateTransient(
                    work, coreLevels, cond, config_.tickMs, uniFreq);
            } else {
                settleSteady();
            }
            physicsSec += Sec(now() - t0).count();
        }

        // Voltage-transition stall: each changed step blocks its core
        // for transitionUsPerStep; charge the chip-average MIPS for
        // the blocked time within this tick.
        if (transitionSteps > 0 && config_.transitionUsPerStep > 0.0) {
            const double stallMs = std::min(
                config_.tickMs,
                static_cast<double>(transitionSteps) *
                    config_.transitionUsPerStep * 1e-3 /
                    static_cast<double>(numThreads));
            transitionLostMipsMs += cond.totalMips * stallMs;
            cond.totalMips *= 1.0 - stallMs / config_.tickMs;
        }
        transitionSteps = 0;

        double minThread = 1e300;
        for (std::size_t c = 0; c < numCores; ++c) {
            if (work[c].app != nullptr)
                minThread = std::min(minThread, cond.coreMips[c]);
        }
        sumMinThread += minThread;

        const double weighted = weightedThroughput(cond, work);
        sumMips += cond.totalMips;
        sumWeighted += weighted;
        sumProgress += weightedProgress(cond, work);
        sumPower += cond.totalPowerW;
        sumFreq += averageActiveFrequency(cond, work);
        for (std::size_t c = 0; c < numCores; ++c)
            result.maxCoreTempC = std::max(result.maxCoreTempC,
                                           cond.coreTempC[c]);
        if (config_.pm != PmKind::None) {
            sumDev += std::abs(cond.totalPowerW - config_.ptargetW) /
                config_.ptargetW;
        }

        // Close the guard's loop on the settled (regulator-side)
        // power and track its tier for the recovery metrics.
        if (guard_ != nullptr) {
            guard_->observeSettled(cond, config_.ptargetW, pcoreMax);
            const int tier = static_cast<int>(guard_->tier());
            if (prevTier == 0 && tier > 0)
                degradeStartMs = nowMs;
            if (prevTier > 0 && tier == 0) {
                totalRecoveryMs += nowMs - degradeStartMs;
                ++recoveryEpisodes;
            }
            if (tier > 0)
                result.degradedTimeMs += config_.tickMs;
            prevTier = tier;
        }
        result.powerTrace.push_back(cond.totalPowerW);
        result.energyJ += cond.totalPowerW * config_.tickMs * 1e-3;
        result.instructions +=
            cond.totalMips * 1.0e6 * config_.tickMs * 1e-3;
        ++ticks;

        // Wearout accounting at the settled operating point.
        for (std::size_t c = 0; c < numCores; ++c) {
            coreVdd[c] = work[c].app != nullptr
                ? die_.voltage(static_cast<std::size_t>(coreLevels[c]))
                : 0.0;
        }
        wearout.accumulate(cond.coreTempC, coreVdd, config_.tickMs);

        // Phase drift.
        for (auto &seq : phases)
            seq.advance(config_.tickMs);
    }

    const double n = static_cast<double>(ticks);
    result.avgMips = sumMips / n;
    result.avgMinThreadMips = sumMinThread / n;
    result.avgWeightedIpc = sumWeighted / n;
    result.avgWeightedProgress = sumProgress / n;
    result.avgPowerW = sumPower / n;
    result.avgFreqHz = sumFreq / n;
    result.powerDeviation =
        config_.pm != PmKind::None ? sumDev / n : 0.0;
    result.ed2 = ed2Of(result.avgPowerW, result.avgMips);
    result.weightedEd2 =
        ed2Of(result.avgPowerW, result.avgWeightedIpc);
    result.worstAgingRate = wearout.worstRate();
    result.projectedLifetimeYears = wearout.projectedLifetimeYears();
    result.transitionLossFraction = sumMips > 0.0
        ? transitionLostMipsMs / (sumMips * config_.tickMs +
                                  transitionLostMipsMs)
        : 0.0;

    result.capViolationFraction = config_.pm != PmKind::None
        ? capViolationFraction(result.powerTrace, config_.ptargetW)
        : 0.0;
    result.physicsSec = physicsSec;
    result.pmSec = pmSec;
    result.schedSec = schedSec;
    result.dvfsFaultsInjected = injector.dvfsFaultsInjected();
    result.coresFailed = injector.coresFailed();
    if (guard_ != nullptr) {
        result.fallbackEngagements = guard_->stats().fallbackEngagements;
        result.guardRecoveries = guard_->stats().recoveries;
        result.finalGuardTier = static_cast<int>(guard_->tier());
        result.sensorQuarantines = guard_->sensorQuarantines();
        result.meanRecoveryMs = recoveryEpisodes > 0
            ? totalRecoveryMs / static_cast<double>(recoveryEpisodes)
            : 0.0;
    }
    return result;
}

} // namespace varsched
