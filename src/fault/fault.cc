#include "fault/fault.hh"

namespace varsched
{

FaultInjector::FaultInjector(const FaultSpec &spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
}

double
FaultInjector::tamperPower(std::size_t coreId, std::size_t level,
                           double trueW)
{
    (void)level; // the sensor, not the operating point, is faulty
    double out = trueW;
    for (const SensorFaultSpec &s : spec_.sensorFaults) {
        if (s.coreId != coreId)
            continue;
        if (nowMs_ < s.startMs || (s.endMs >= 0.0 && nowMs_ >= s.endMs))
            continue;
        switch (s.kind) {
          case SensorFaultKind::StuckAt:
            out = s.magnitude;
            break;
          case SensorFaultKind::Dropout:
            out = 0.0;
            break;
          case SensorFaultKind::Spike:
            if (rng_.uniform() < s.probability)
                out *= s.magnitude;
            break;
          case SensorFaultKind::Drift:
            out += s.magnitude * (nowMs_ - s.startMs);
            break;
        }
        ++tampered_;
    }
    return out;
}

int
FaultInjector::actuate(std::size_t coreId, int currentLevel,
                       int requestedLevel)
{
    (void)coreId;
    if (requestedLevel == currentLevel)
        return requestedLevel;
    // Draws happen only for configured fault classes so that a
    // zero-rate spec consumes no randomness (bit-identical to a
    // fault-free run).
    if (spec_.dvfs.failRate > 0.0 &&
        rng_.uniform() < spec_.dvfs.failRate) {
        ++dvfsFaults_;
        return currentLevel;
    }
    if (spec_.dvfs.shortStepRate > 0.0 &&
        rng_.uniform() < spec_.dvfs.shortStepRate) {
        ++dvfsFaults_;
        return requestedLevel > currentLevel ? requestedLevel - 1
                                             : requestedLevel + 1;
    }
    return requestedLevel;
}

bool
FaultInjector::coreFailed(std::size_t coreId) const
{
    for (const CoreFailureSpec &f : spec_.coreFailures) {
        if (f.coreId == coreId && nowMs_ >= f.atMs)
            return true;
    }
    return false;
}

std::size_t
FaultInjector::coresFailed() const
{
    std::size_t n = 0;
    const auto &specs = spec_.coreFailures;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (nowMs_ < specs[i].atMs)
            continue;
        bool counted = false; // same core listed twice counts once
        for (std::size_t j = 0; j < i; ++j) {
            if (specs[j].coreId == specs[i].coreId &&
                nowMs_ >= specs[j].atMs)
                counted = true;
        }
        if (!counted)
            ++n;
    }
    return n;
}

} // namespace varsched
