#!/bin/sh
# CI-style smoke of the VARSCHED_NATIVE configuration: configure a
# separate host-tuned build, build it, run the fast test tiers (unit
# tests + bench smokes, including the simd_forced_scalar fallback
# configuration and the sampling_guard sampled-vs-exact tier), then
# run the perf-gated benches at full paper scale — the four
# manufacture-bound ones plus the phase-sampled system benches
# (fig13/fig14/longhorizon) — and gate them against the committed
# BENCH_PR9.json baseline — a hard (non-informational) regression
# gate, so a perf regression on the SIMD/runtime/sampling path fails
# this script. A trailing observability tier then enforces the tracer
# contract: disabled trace sites cost <1% on fig13, and a traced run
# emits the expected span families. Keeps the default build directory
# untouched. Usage:
#   tools/ci_native.sh [build-dir]        # default: build-native
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-native"}

cmake -B "$build" -S "$repo" -DVARSCHED_NATIVE=ON
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j

# Explicit pass over the sampled-vs-exact guard tier: every sampled
# bench re-runs against its exact reference (VARSCHED_BENCH_COMPARE=1
# aborts beyond the error budget).
ctest --test-dir "$build" -L sampling_guard --output-on-failure

# Full-scale perf gate: the mfg-bound benches write a fresh JSON which
# must validate and must not have regressed against the committed
# baseline. The gate runs *without* VARSCHED_BENCH_COMPARE: the
# guard's serial re-run doubles the measured wall time, and the
# bit-identity check is already exercised by the bench_smoke ctest
# tier above (smoke_bench_fig05_sigma_sweep runs with the guard on).
gate_json="$build/BENCH_GATE.json"
rm -f "$gate_json"
for bench in bench_ext_yield bench_fig04_variation \
             bench_fig05_sigma_sweep bench_ext_abb \
             bench_fig13_weighted bench_fig14_granularity \
             bench_ext_longhorizon; do
    VARSCHED_BENCH_JSON="$gate_json" \
        "$build/bench/$bench" > /dev/null
done
"$build/tools/validate_bench_json" "$gate_json"
"$build/tools/compare_bench_json" "$repo/BENCH_PR9.json" "$gate_json"

# Trace-overhead guard: with tracing *disabled* (the shipped default)
# a full-scale fig13 must stay within 1% of the committed baseline —
# the disabled path is one relaxed atomic load and a branch per site,
# and this holds the instrumented tick loop to that contract.
overhead_json="$build/BENCH_TRACE_OVERHEAD.json"
rm -f "$overhead_json"
VARSCHED_BENCH_JSON="$overhead_json" \
    "$build/bench/bench_fig13_weighted" > /dev/null
"$build/tools/compare_bench_json" "$repo/BENCH_PR9.json" \
    "$overhead_json" --slack 1.01

# Traced run: a full-scale fig13 under VARSCHED_TRACE must produce a
# well-formed Chrome/Perfetto trace carrying every instrumented span
# family (trace_summarize exits nonzero on a malformed file or a
# missing --expect). VARSCHED_THREADS=2 forces the ThreadPool path
# even on single-core hosts, where the batch runner would otherwise
# go serial and never emit pool.task spans.
trace_json="$build/fig13.trace.json"
rm -f "$trace_json"
VARSCHED_TRACE="$trace_json" VARSCHED_THREADS=2 \
    VARSCHED_BENCH_JSON="$build/BENCH_TRACED.json" \
    "$build/bench/bench_fig13_weighted" > /dev/null
"$build/tools/trace_summarize" "$trace_json" \
    --expect physics. --expect pm.decide --expect sched.place \
    --expect pool.task --expect experiment.trial
