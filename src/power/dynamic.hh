/**
 * @file
 * Dynamic (switching) power model in the Wattch tradition: each core
 * functional unit has an effective switched capacitance, scaled by a
 * per-application, per-unit activity factor measured by the cmpsim
 * timing model. Unit powers scale as V^2 * f; the clock tree adds an
 * activity-independent component. L2 dynamic power follows the access
 * stream each application drives into the shared cache.
 */

#ifndef VARSCHED_POWER_DYNAMIC_HH
#define VARSCHED_POWER_DYNAMIC_HH

#include <array>
#include <cstddef>

#include "floorplan/floorplan.hh"

namespace varsched
{

/** Per-unit activity factors (0..1), one per CoreUnit. */
using ActivityVector = std::array<double, kNumCoreUnits>;

/** Dynamic power parameters. */
struct DynamicPowerParams
{
    /** Nominal supply, volts. */
    double nominalVdd = 1.0;
    /** Nominal frequency, Hz. */
    double nominalFreqHz = 4.0e9;
    /**
     * Watts each unit burns at full activity, nominal V and f
     * (Alpha-21264-like distribution across a ~7 W dynamic budget).
     */
    std::array<double, kNumCoreUnits> unitMaxW{
        1.25, // Fetch
        1.00, // Decode
        1.25, // RegFile
        1.70, // IntExec
        2.10, // FpExec
        1.10, // LoadStore
        1.10, // L1I
        1.55, // L1D
    };
    /** Clock tree + global wires at nominal V, f (always switching). */
    double clockTreeW = 1.10;
    /** Energy per L2 access at nominal Vdd, joules. */
    double l2AccessEnergyJ = 2.0e-9;
};

/** Dynamic power evaluator. */
class DynamicPowerModel
{
  public:
    explicit DynamicPowerModel(const DynamicPowerParams &params = {});

    /**
     * Dynamic power of one core at (v, f) with the given activity,
     * including the clock tree.
     */
    double corePower(const ActivityVector &activity, double v,
                     double f) const;

    /** Dynamic power of one unit (excludes the clock tree). */
    double unitPower(CoreUnit unit, double activity, double v,
                     double f) const;

    /**
     * L2 dynamic power for an access stream of @p accessesPerSec
     * (the L2 runs on the uncore supply, held at nominal).
     */
    double l2Power(double accessesPerSec) const;

    /**
     * Solve for the activity scale that makes a core consume
     * @p targetW at nominal (V, f) given a relative per-unit shape;
     * used to calibrate application profiles to Table 5.
     *
     * @param shape Relative per-unit activity shape (any positive
     *        scale); the returned vector is shape * s, clamped to 1.
     */
    ActivityVector calibrateActivity(const ActivityVector &shape,
                                     double targetW) const;

    /** Parameters in use. */
    const DynamicPowerParams &params() const { return params_; }

  private:
    DynamicPowerParams params_;
};

} // namespace varsched

#endif // VARSCHED_POWER_DYNAMIC_HH
