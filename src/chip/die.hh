/**
 * @file
 * A manufactured die: the variation map realised into per-core
 * frequency tables and leakage behaviour.
 *
 * The Die bundles exactly the information the paper's Table 3 says
 * the manufacturer provides after binning:
 *  - per core, the maximum frequency supported at each voltage level
 *    (binned at 95 C, quantised to the frequency step), and
 *  - per core, the static power at each voltage level (measured at
 *    zero load and reference temperature).
 * plus the underlying physical models, which the run-time "sensors"
 * (chip/sensors) use to synthesise power/IPC readings.
 */

#ifndef VARSCHED_CHIP_DIE_HH
#define VARSCHED_CHIP_DIE_HH

#include <cstdint>
#include <vector>

#include "floorplan/floorplan.hh"
#include "power/dynamic.hh"
#include "power/leakage.hh"
#include "thermal/thermal.hh"
#include "timing/critpath.hh"
#include "varius/varmap.hh"

namespace varsched
{

/** Everything needed to manufacture and operate dies. */
struct DieParams
{
    VariationParams variation;
    DelayParams delay;
    CritPathParams critPath;
    LeakageParams leakage;
    ThermalParams thermal;
    DynamicPowerParams dynamic;

    /** Number of cores (Table 4: 20). */
    std::size_t numCores = 20;
    /** Die area, mm^2. */
    double dieAreaMm2 = 340.0;
    /** Voltage levels, volts (0.6-1.0 V in 0.05 V steps). */
    std::vector<double> voltageLevels = {0.60, 0.65, 0.70, 0.75, 0.80,
                                         0.85, 0.90, 0.95, 1.00};
    /** Frequency quantisation step, Hz (62.5 MHz). */
    double freqStepHz = 62.5e6;

    /**
     * Adaptive Body Bias strength in [0, 1] (Humenay et al., the
     * mitigation discussed in the paper's Related Work). Slow cores
     * receive a *forward* body bias (a Vth reduction, found by
     * bisection) that closes this fraction of their frequency deficit
     * against the die's median core. Speeding a core up this way
     * inflates its leakage exponentially — ABB trades reduced
     * frequency variation for increased power (and power-variation),
     * exactly Humenay et al.'s observation. 0 disables ABB.
     */
    double abbStrength = 0.0;
    /** Maximum forward bias (Vth reduction) available, volts. */
    double abbMaxBiasV = 0.06;
};

/** One manufactured die. */
class Die
{
  public:
    /**
     * Manufacture a die: draw its variation maps and bin every core.
     *
     * @param params Technology/architecture parameters.
     * @param dieSeed Seed identifying this die; the whole object is a
     *        pure function of (params, dieSeed).
     */
    Die(const DieParams &params, std::uint64_t dieSeed);

    /** Number of cores. */
    std::size_t numCores() const { return plan_.numCores(); }
    /** Number of voltage levels. */
    std::size_t numLevels() const { return params_.voltageLevels.size(); }
    /** Voltage of level @p level (volts, ascending). */
    double voltage(std::size_t level) const
    { return params_.voltageLevels[level]; }
    /** Index of the highest level. */
    std::size_t maxLevel() const { return numLevels() - 1; }

    /**
     * Binned frequency of core @p core at voltage level @p level
     * (guaranteed at temperatures up to the binning temperature).
     */
    double freqAt(std::size_t core, std::size_t level) const
    { return freqTable_[core][level]; }

    /** Maximum frequency of a core (at the top voltage level). */
    double maxFreq(std::size_t core) const
    { return freqTable_[core][maxLevel()]; }

    /** Slowest core's maximum frequency (the UniFreq chip clock). */
    double uniformFreq() const;

    /**
     * Manufacturer-measured static power of a core at a voltage
     * level and the reference temperature (zero-load measurement;
     * Table 3's VarP / VarP&AppP input).
     */
    double staticPowerAt(std::size_t core, std::size_t level) const
    { return staticTable_[core][level]; }

    /** Live leakage power of a core at arbitrary (V, T). */
    double leakagePower(std::size_t core, double v, double tempC) const;

    /** Body-bias Vth shift applied to core @p core (0 without ABB). */
    double vthBias(std::size_t core) const { return vthBias_[core]; }

    /** Leakage of L2 block @p idx at (V, T). */
    double l2LeakagePower(std::size_t idx, double v, double tempC) const;

    /** Underlying models and geometry. */
    const Floorplan &floorplan() const { return plan_; }
    const VariationMap &variationMap() const { return map_; }
    const DieParams &params() const { return params_; }
    const DynamicPowerModel &dynamicModel() const { return dynModel_; }
    const ThermalModel &thermalModel() const { return thermalModel_; }

    /** Seed this die was manufactured with. */
    std::uint64_t seed() const { return seed_; }

  private:
    DieParams params_;
    std::uint64_t seed_;
    Floorplan plan_;
    VariationMap map_;
    LeakageModel leakModel_;
    DynamicPowerModel dynModel_;
    ThermalModel thermalModel_;
    std::vector<CoreTiming> timing_;
    std::vector<double> vthBias_; ///< Per-core ABB shift, volts.
    /**
     * Per-core systematic-Vth samples at the leakage model's fixed
     * integration points, taken once at manufacture (the map never
     * changes afterwards) so live leakage queries skip the field
     * interpolation. Value semantics: survives copies/moves of the
     * die, unlike a pointer-keyed cache would.
     */
    std::vector<std::vector<double>> vthSamples_;
    std::vector<std::vector<double>> freqTable_;   ///< [core][level]
    std::vector<std::vector<double>> staticTable_; ///< [core][level]
};

/**
 * Manufacture a reproducible batch of dies (the paper uses 200 per
 * experiment).
 */
std::vector<Die> manufactureBatch(const DieParams &params,
                                  std::size_t count,
                                  std::uint64_t batchSeed);

} // namespace varsched

#endif // VARSCHED_CHIP_DIE_HH
