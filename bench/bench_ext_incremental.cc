/**
 * @file
 * Incremental-evaluation guard bench (extension, PR 3): runs one
 * Fig 13-style system batch twice — warmStartThermal on and off —
 * and fails when any paper-facing metric diverges beyond tolerance.
 * The warm-started leakage-temperature fixed point converges to the
 * same solution as the cold start within its 0.05 C tolerance, so the
 * run-averaged metrics must agree to well under 0.5%; a larger gap
 * means the warm start changed the physics, not just the iteration
 * count. Run under VARSCHED_BENCH_COMPARE=1 (as the smoke CTest
 * does), each batch additionally verifies that the parallel runner is
 * bit-identical to the serial path.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"

using namespace varsched;

namespace
{

/** Relative deviation |a - b| / max(|a|, tiny). */
double
relDiff(double a, double b)
{
    const double scale = std::max(std::abs(a), 1e-12);
    return std::abs(a - b) / scale;
}

} // namespace

int
main()
{
    bench::PerfRecorder perf("bench_ext_incremental");
    bench::banner("Incremental evaluation guard: warmStartThermal "
                  "on vs off",
                  "extension - warm start must keep every metric "
                  "within tolerance of the cold fixed point");

    BatchConfig batch = defaultBatch(2, 2);
    bench::describeBatch(batch);

    const std::size_t threads = 8;
    std::vector<SystemConfig> configs(2);
    configs[0].sched = SchedAlgo::Random;
    configs[0].pm = PmKind::FoxtonStar;
    configs[1].sched = SchedAlgo::VarFAppIPC;
    configs[1].pm = PmKind::LinOpt;
    for (auto &c : configs) {
        c.ptargetW = 75.0 * static_cast<double>(threads) / 20.0;
        c.durationMs = 100.0;
        c.sannEvals = envSize("VARSCHED_SANN_EVALS", 2000);
    }

    std::vector<SystemConfig> cold = configs;
    for (auto &c : configs)
        c.warmStartThermal = true;
    for (auto &c : cold)
        c.warmStartThermal = false;

    const auto warmRes = perf.run(batch, threads, configs);
    const auto coldRes = perf.run(batch, threads, cold);

    // The fixed point tolerance is 0.05 C on ~70 C temperatures;
    // after averaging over hundreds of ticks the metric-level impact
    // is far below the paper-fidelity bar of 0.5%.
    const double tol = 5e-3;
    int bad = 0;
    for (std::size_t k = 0; k < configs.size(); ++k) {
        const auto &w = warmRes.absolute[k];
        const auto &c = coldRes.absolute[k];
        const struct
        {
            const char *name;
            double warm, cold;
        } rows[] = {
            {"mips", w.mips.mean(), c.mips.mean()},
            {"weightedIpc", w.weightedIpc.mean(),
             c.weightedIpc.mean()},
            {"powerW", w.powerW.mean(), c.powerW.mean()},
            {"freqHz", w.freqHz.mean(), c.freqHz.mean()},
            {"ed2", w.ed2.mean(), c.ed2.mean()},
            {"weightedEd2", w.weightedEd2.mean(),
             c.weightedEd2.mean()},
        };
        for (const auto &row : rows) {
            const double d = relDiff(row.warm, row.cold);
            if (d > tol) {
                std::fprintf(stderr,
                             "config %zu %s: warm %.9g vs cold %.9g "
                             "(rel diff %.3g > %.3g)\n",
                             k, row.name, row.warm, row.cold, d, tol);
                ++bad;
            }
        }
    }

    std::printf("config 0 (Foxton*): warm %.4f MIPS vs cold %.4f "
                "MIPS, warm %.4f W vs cold %.4f W\n",
                warmRes.absolute[0].mips.mean(),
                coldRes.absolute[0].mips.mean(),
                warmRes.absolute[0].powerW.mean(),
                coldRes.absolute[0].powerW.mean());
    std::printf("config 1 (LinOpt):  warm %.4f MIPS vs cold %.4f "
                "MIPS, warm %.4f W vs cold %.4f W\n",
                warmRes.absolute[1].mips.mean(),
                coldRes.absolute[1].mips.mean(),
                warmRes.absolute[1].powerW.mean(),
                coldRes.absolute[1].powerW.mean());
    if (bad > 0) {
        std::fprintf(stderr,
                     "%d metric(s) diverged between warm and cold "
                     "thermal starts\n",
                     bad);
        return 1;
    }
    std::printf("\nall metrics agree within %.2g relative "
                "tolerance\n", 5e-3);
    return 0;
}
