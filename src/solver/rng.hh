/**
 * @file
 * Seeded, reproducible pseudo-random number generation.
 *
 * Every stochastic component in varsched (variation maps, workload
 * trace generators, scheduling trials, simulated annealing) draws from
 * an explicitly seeded Rng so that whole experiments — 200-die batches,
 * 20-trial workload sweeps — replay bit-identically across runs and
 * platforms. The generator is xoshiro256**, which is small, fast, and
 * has no observable statistical defects at the sample sizes we use.
 */

#ifndef VARSCHED_SOLVER_RNG_HH
#define VARSCHED_SOLVER_RNG_HH

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace varsched
{

/** One splitmix64 mixing step (also the Rng state expander). */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Derive a child seed as a pure function of (seed, a, b) — no
 * sequential draws involved, so stream i of a batch can be derived
 * in any order (or concurrently) and still match a serial walk.
 * Used by the batch runner to give every (die, trial) tuple its own
 * independent stream.
 */
inline std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0)
{
    std::uint64_t x = splitmix64(seed ^ (a * 0xd1342543de82ef95ull));
    x = splitmix64(x ^ (b * 0x2545f4914f6cdd1dull));
    return splitmix64(x);
}

/**
 * Deterministic random number generator (xoshiro256**) with
 * convenience draws for the distributions used across the project.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (-n) % n;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % n;
        }
    }

    /** Standard normal draw (Box-Muller, cached second value). */
    double
    normal()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        const double ang = 2.0 * std::numbers::pi * u2;
        spare_ = mag * std::sin(ang);
        haveSpare_ = true;
        return mag * std::cos(ang);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mu, double sigma)
    {
        return mu + sigma * normal();
    }

    /**
     * True when a cached Box-Muller spare is pending — i.e. the next
     * normal() returns the stored sin half instead of drawing
     * uniforms. Batched normal fills check this to decide whether the
     * vectorised path (which replays the uniform stream in pairs)
     * starts stream-aligned with the scalar sequence.
     */
    bool
    hasNormalSpare() const
    {
        return haveSpare_;
    }

    /**
     * Derive an independent child generator. Used to give each die,
     * trial, or application its own stream while remaining a pure
     * function of (parent seed, tag).
     */
    Rng
    fork(std::uint64_t tag)
    {
        return Rng(next() ^ (tag * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
    }

    /**
     * Complete generator state — the xoshiro words plus the cached
     * Box-Muller spare — packed into an ordered, comparable array.
     * Two generators with equal captured states produce identical
     * draw sequences, which is what lets state-keyed caches (the
     * variation-field sample cache) replay a generation step exactly.
     */
    std::array<std::uint64_t, 6>
    captureState() const
    {
        return {state_[0], state_[1], state_[2], state_[3],
                std::bit_cast<std::uint64_t>(spare_),
                static_cast<std::uint64_t>(haveSpare_)};
    }

    /** Restore a state captured with captureState(). */
    void
    restoreState(const std::array<std::uint64_t, 6> &snap)
    {
        state_[0] = snap[0];
        state_[1] = snap[1];
        state_[2] = snap[2];
        state_[3] = snap[3];
        spare_ = std::bit_cast<double>(snap[4]);
        haveSpare_ = snap[5] != 0;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace varsched

#endif // VARSCHED_SOLVER_RNG_HH
