#!/bin/sh
# CI-style smoke of the VARSCHED_NATIVE configuration: configure a
# separate host-tuned build, build it, and run the fast test tiers
# (unit tests + bench smokes). Keeps the default build directory
# untouched. Usage:
#   tools/ci_native.sh [build-dir]        # default: build-native
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-native"}

cmake -B "$build" -S "$repo" -DVARSCHED_NATIVE=ON
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j
