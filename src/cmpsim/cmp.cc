#include "cmpsim/cmp.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace varsched
{

CmpModel::CmpModel(const CoreConfig &config,
                   const std::vector<const AppProfile *> &apps, Rng rng,
                   std::uint64_t quantum)
    : config_(config), l2_(l2Config()), quantum_(quantum)
{
    assert(!apps.empty());
    cores_.resize(apps.size());
    for (std::size_t c = 0; c < apps.size(); ++c) {
        cores_[c].trace = std::make_unique<TraceGenerator>(
            *apps[c], rng.fork(1000 + c));
        // Prefill: every core's resident set lands in the shared L2;
        // capacity pressure between sets is then visible immediately.
        cores_[c].trace->prefill(cores_[c].l1d, l2_);
    }
}

void
CmpModel::step(std::size_t c, bool record)
{
    CoreState &core = cores_[c];
    SimStats &stats = core.stats;
    const SynthInstr instr = core.trace->next();
    const std::uint64_t i = core.index++;

    double fetch = std::max(core.fetchClock, core.redirectUntil);
    if (i >= config_.robSize) {
        fetch = std::max(
            fetch, core.commit[(i - config_.robSize) %
                               CoreState::kWindow]);
    }
    core.fetchClock =
        fetch + 1.0 / static_cast<double>(config_.fetchWidth);

    double ready = fetch + 1.0;
    if (instr.depDistance != 0 &&
        instr.depDistance < CoreState::kWindow &&
        instr.depDistance <= i) {
        ready = std::max(ready,
                         core.completion[(i - instr.depDistance) %
                                         CoreState::kWindow]);
    }

    double issue = std::max(ready, core.issueClock);
    core.issueClock = std::max(core.issueClock, issue - 8.0) +
        1.0 / static_cast<double>(config_.issueWidth);

    const double memCycles =
        config_.memLatencyNs * 1e-9 * config_.freqHz;

    double latency = config_.intLatency;
    switch (instr.type) {
      case InstrType::IntAlu:
        if (record)
            ++stats.intOps;
        break;
      case InstrType::FpAlu:
        latency = config_.fpLatency;
        if (record)
            ++stats.fpOps;
        break;
      case InstrType::Store:
        if (record)
            ++stats.stores;
        if (!core.l1d.access(instr.addr)) {
            if (record)
                ++stats.l1dMisses;
            if (!l2_.access(instr.addr)) {
                if (record)
                    ++stats.l2Misses;
                core.memPortFree = std::max(core.memPortFree, issue) +
                    memCycles * 0.85;
            }
        }
        latency = 1.0;
        break;
      case InstrType::Load:
        if (record)
            ++stats.loads;
        if (core.l1d.access(instr.addr)) {
            latency = config_.l1HitCycles;
        } else if (l2_.access(instr.addr)) {
            if (record)
                ++stats.l1dMisses;
            latency = config_.l2HitCycles;
        } else {
            if (record) {
                ++stats.l1dMisses;
                ++stats.l2Misses;
            }
            const double start = std::max(issue, core.memPortFree);
            core.memPortFree = start + memCycles * 0.85;
            latency = (start - issue) + memCycles;
        }
        break;
      case InstrType::Branch:
        if (record)
            ++stats.branches;
        if (!core.predictor.resolve(instr.addr, instr.taken)) {
            if (record)
                ++stats.branchMispredicts;
            core.redirectUntil = std::max(
                core.redirectUntil,
                issue + latency +
                    static_cast<double>(config_.mispredictPenalty));
        }
        break;
    }

    const double complete = issue + latency;
    core.completion[i % CoreState::kWindow] = complete;
    const double commit = std::max(complete, core.lastCommit) + 0.5;
    core.commit[i % CoreState::kWindow] = commit;
    core.lastCommit = commit;
    if (record)
        ++core.retired;
}

std::vector<CmpCoreStats>
CmpModel::run(std::uint64_t instrsPerCore)
{
    const std::size_t n = cores_.size();

    // Shared warmup: interleave a slice of every core so the shared
    // L2 reaches a contended steady state before measuring.
    const std::uint64_t warmup =
        std::min<std::uint64_t>(20000, instrsPerCore / 4);
    for (std::uint64_t done = 0; done < warmup; done += quantum_) {
        for (std::size_t c = 0; c < n; ++c) {
            for (std::uint64_t k = 0;
                 k < std::min(quantum_, warmup - done); ++k)
                step(c, false);
        }
    }
    for (auto &core : cores_)
        core.measureStart = core.lastCommit;

    // Measured region: round-robin quanta until every core retires
    // its share (cores that finish early keep running unrecorded so
    // they continue to exert L2 pressure on the stragglers).
    for (;;) {
        bool allDone = true;
        for (const auto &core : cores_)
            allDone = allDone && core.retired >= instrsPerCore;
        if (allDone)
            break;
        for (std::size_t c = 0; c < n; ++c) {
            for (std::uint64_t k = 0; k < quantum_; ++k)
                step(c, cores_[c].retired < instrsPerCore);
            if (cores_[c].retired >= instrsPerCore &&
                cores_[c].measureEnd == 0.0) {
                cores_[c].measureEnd = cores_[c].lastCommit;
            }
        }
    }

    std::vector<CmpCoreStats> out(n);
    for (std::size_t c = 0; c < n; ++c) {
        CoreState &core = cores_[c];
        core.stats.instructions = core.retired;
        const double end =
            core.measureEnd > 0.0 ? core.measureEnd : core.lastCommit;
        core.stats.cycles = static_cast<std::uint64_t>(
            std::max(1.0, end - core.measureStart));
        out[c].stats = core.stats;
        out[c].ipc = core.stats.ipc();
    }
    return out;
}

} // namespace varsched
