#include "solver/annealing.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace varsched
{

AnnealResult
annealMinimize(
    const std::vector<int> &initial, const std::vector<int> &levels,
    const std::function<double(const std::vector<int> &)> &energy,
    const AnnealOptions &opts)
{
    assert(initial.size() == levels.size());

    Rng rng(opts.seed);
    AnnealResult result;

    std::vector<int> current = initial;
    double currentEnergy = energy(current);
    ++result.evals;

    result.best = current;
    result.bestEnergy = currentEnergy;

    const std::size_t n = current.size();
    if (n == 0)
        return result;

    std::vector<int> candidate(n);
    while (result.evals < opts.maxEvals) {
        // Logarithmic cooling: T_k = T0 / ln(k + e).
        const double temp = opts.initialTemp /
            std::log(static_cast<double>(result.evals) + std::numbers::e);

        // Gaussian Markov kernel with scale tracking the temperature.
        // At least one coordinate always moves so the chain cannot
        // stall on a zero proposal.
        candidate = current;
        const double scale = std::max(0.5, temp);
        bool moved = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.uniform() < 1.5 / static_cast<double>(n)) {
                const int step =
                    static_cast<int>(std::lround(rng.normal(0.0, scale)));
                if (step != 0) {
                    candidate[i] = std::clamp(candidate[i] + step, 0,
                                              levels[i] - 1);
                    moved = moved || candidate[i] != current[i];
                }
            }
        }
        if (!moved) {
            const std::size_t i = rng.below(n);
            const int dir = rng.uniform() < 0.5 ? -1 : 1;
            candidate[i] = std::clamp(candidate[i] + dir, 0, levels[i] - 1);
            if (candidate[i] == current[i])
                candidate[i] = std::clamp(candidate[i] - dir, 0,
                                          levels[i] - 1);
        }

        const double candEnergy = energy(candidate);
        ++result.evals;

        const double delta = candEnergy - currentEnergy;
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
            current = candidate;
            currentEnergy = candEnergy;
            ++result.accepted;
            if (currentEnergy < result.bestEnergy) {
                result.bestEnergy = currentEnergy;
                result.best = current;
            }
        }
    }

    return result;
}

} // namespace varsched
